//! Shared harness code for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Every binary honours two environment variables:
//!
//! * `SETCHAIN_SCALE` — time-scale factor applied to the injection duration
//!   and to the efficiency checkpoints (default **0.25**, i.e. 12.5 s of
//!   injection instead of the paper's 50 s). The simulations reach steady
//!   state within a few seconds, so the scaled runs preserve every
//!   qualitative result while fitting a single-core machine; set
//!   `SETCHAIN_SCALE=1` to run at full paper scale.
//! * `SETCHAIN_OUT` — directory where CSV result files are written
//!   (default `target/experiments`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod pipeline;

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use setchain::Algorithm;
use setchain_simnet::SimTime;
use setchain_workload::{RunResult, Scenario, ThroughputSeries};

/// Experiment context shared by all figure binaries.
#[derive(Clone, Debug)]
pub struct ExperimentCtx {
    /// Time-scale factor (1.0 = the paper's 50 s injection).
    pub scale: f64,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

impl Default for ExperimentCtx {
    fn default() -> Self {
        Self::from_env()
    }
}

impl ExperimentCtx {
    /// Builds the context from `SETCHAIN_SCALE` / `SETCHAIN_OUT`.
    pub fn from_env() -> Self {
        let scale = std::env::var("SETCHAIN_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| *s > 0.0 && *s <= 4.0)
            .unwrap_or(0.25);
        let out_dir = std::env::var("SETCHAIN_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/experiments"));
        ExperimentCtx { scale, out_dir }
    }

    /// The paper's 50-second injection window, scaled.
    pub fn injection_secs(&self) -> u64 {
        ((50.0 * self.scale).round() as u64).max(5)
    }

    /// The efficiency checkpoints 50 / 75 / 100 s, scaled.
    pub fn checkpoints(&self) -> [u64; 3] {
        let i = self.injection_secs();
        [i, i + i / 2, 2 * i]
    }

    /// Maximum run duration: six injection windows (the paper's Fig. 1 left
    /// runs for up to ~300 s with a 50 s injection).
    pub fn max_run_secs(&self) -> u64 {
        6 * self.injection_secs()
    }

    /// Applies the scale to a base scenario.
    pub fn scale_scenario(&self, scenario: Scenario) -> Scenario {
        scenario
            .with_injection_secs(self.injection_secs())
            .with_max_run_secs(self.max_run_secs())
    }

    /// A scaled scenario for `algorithm` with the paper's base parameters.
    pub fn scenario(&self, algorithm: Algorithm) -> Scenario {
        self.scale_scenario(Scenario::base(algorithm))
    }

    /// Opens (creating directories as needed) a CSV output file.
    pub fn csv(&self, name: &str) -> std::io::Result<fs::File> {
        fs::create_dir_all(&self.out_dir)?;
        fs::File::create(self.out_dir.join(name))
    }

    /// Writes rows to a CSV file, logging the path.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        match self.csv(name) {
            Ok(mut f) => {
                let _ = writeln!(f, "{header}");
                for row in rows {
                    let _ = writeln!(f, "{row}");
                }
                println!("  [written: {}]", self.out_dir.join(name).display());
            }
            Err(e) => eprintln!("  [warning: could not write {name}: {e}]"),
        }
    }
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!();
    println!("==== {title} ====");
}

/// Formats throughput for tables (matches the paper's "el/s" columns).
pub fn fmt_els(v: f64) -> String {
    if v >= 1.0e6 {
        format!("{:.2}M el/s", v / 1.0e6)
    } else if v >= 10_000.0 {
        format!("{:.0}k el/s", v / 1_000.0)
    } else {
        format!("{v:.0} el/s")
    }
}

/// Summary row used by several figures.
pub struct RunSummary {
    /// Scenario label.
    pub label: String,
    /// Elements added.
    pub added: u64,
    /// Elements committed by the end of the run.
    pub committed: u64,
    /// Average committed throughput over the injection window.
    pub avg_throughput: f64,
    /// Peak smoothed throughput.
    pub peak_throughput: f64,
    /// Efficiency at the three (scaled) checkpoints.
    pub efficiency: [f64; 3],
    /// Wall-clock runtime of the simulation.
    pub wall: std::time::Duration,
}

/// Builds the summary of one run, using the scaled checkpoints of `ctx`.
pub fn summarize(ctx: &ExperimentCtx, result: &RunResult) -> RunSummary {
    let injection = ctx.injection_secs();
    let series = ThroughputSeries::compute(
        &result.trace,
        9,
        result.finished_at.max(SimTime::from_secs(injection)),
    );
    let added = result.added.max(1);
    let [c1, c2, c3] = ctx.checkpoints();
    let eff = |s: u64| result.trace.committed_count_by(SimTime::from_secs(s)) as f64 / added as f64;
    RunSummary {
        label: result.scenario.label.clone(),
        added: result.added,
        committed: result.committed,
        avg_throughput: result.average_throughput(injection),
        peak_throughput: series.peak(),
        efficiency: [eff(c1), eff(c2), eff(c3)],
        wall: result.wall,
    }
}

/// Prints a standard summary table for a set of runs.
pub fn print_summary_table(ctx: &ExperimentCtx, summaries: &[RunSummary]) {
    let [c1, c2, c3] = ctx.checkpoints();
    println!(
        "{:<28} {:>9} {:>9} {:>14} {:>14} {:>7} {:>7} {:>7} {:>9}",
        "scenario",
        "added",
        "committed",
        "avg tput",
        "peak tput",
        format!("eff@{c1}s"),
        format!("eff@{c2}s"),
        format!("eff@{c3}s"),
        "wall"
    );
    for s in summaries {
        println!(
            "{:<28} {:>9} {:>9} {:>14} {:>14} {:>7.2} {:>7.2} {:>7.2} {:>8.1}s",
            s.label,
            s.added,
            s.committed,
            fmt_els(s.avg_throughput),
            fmt_els(s.peak_throughput),
            s.efficiency[0],
            s.efficiency[1],
            s.efficiency[2],
            s.wall.as_secs_f64(),
        );
    }
}

/// CSV rows for a summary table.
pub fn summary_csv_rows(summaries: &[RunSummary]) -> Vec<String> {
    summaries
        .iter()
        .map(|s| {
            format!(
                "{},{},{},{:.1},{:.1},{:.4},{:.4},{:.4},{:.2}",
                s.label.replace(',', ";"),
                s.added,
                s.committed,
                s.avg_throughput,
                s.peak_throughput,
                s.efficiency[0],
                s.efficiency[1],
                s.efficiency[2],
                s.wall.as_secs_f64()
            )
        })
        .collect()
}

/// Header matching [`summary_csv_rows`].
pub const SUMMARY_CSV_HEADER: &str =
    "label,added,committed,avg_throughput,peak_throughput,eff_c1,eff_c2,eff_c3,wall_secs";

/// Resolve an output path for documentation purposes.
pub fn out_path(ctx: &ExperimentCtx, name: &str) -> String {
    Path::new(&ctx.out_dir).join(name).display().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_and_checkpoints() {
        let ctx = ExperimentCtx {
            scale: 1.0,
            out_dir: PathBuf::from("/tmp/x"),
        };
        assert_eq!(ctx.injection_secs(), 50);
        assert_eq!(ctx.checkpoints(), [50, 75, 100]);
        assert_eq!(ctx.max_run_secs(), 300);
        let quarter = ExperimentCtx {
            scale: 0.25,
            out_dir: PathBuf::from("/tmp/x"),
        };
        assert_eq!(quarter.injection_secs(), 13);
        assert_eq!(quarter.checkpoints(), [13, 19, 26]);
    }

    #[test]
    fn scenario_scaling_applies() {
        let ctx = ExperimentCtx {
            scale: 0.5,
            out_dir: PathBuf::from("/tmp/x"),
        };
        let s = ctx.scenario(Algorithm::Hashchain);
        assert_eq!(s.injection_secs, 25);
        assert_eq!(s.max_run_secs, 150);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_els(950.0), "950 el/s");
        assert_eq!(fmt_els(27_157.0), "27k el/s");
        assert_eq!(fmt_els(30.0e6), "30.00M el/s");
    }
}
