//! Ablation bench for the design choice the paper identifies as Hashchain's
//! bottleneck: the hash-reversal service. Compares a short Hashchain run with
//! hash-reversal enabled against the "light" configuration (no reversal, no
//! hash-batch validation), plus the f+1 vs 2f+1 consolidation quorum
//! mentioned in the paper's discussion of more efficient alternatives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setchain::Algorithm;
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, Scenario};

fn committed(scenario: &Scenario, sim_secs: u64) -> usize {
    let mut deployment = Deployment::build(scenario);
    deployment.sim.run_until(SimTime::from_secs(sim_secs));
    deployment
        .trace
        .committed_count_by(SimTime::from_secs(sim_secs))
}

fn bench_hash_reversal_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_reversal_ablation");
    group.sample_size(10);
    let base = || {
        Scenario::base(Algorithm::Hashchain)
            .with_servers(4)
            .with_rate(2_000.0)
            .with_collector(100)
            .with_injection_secs(4)
            .with_max_run_secs(6)
            .with_seed(123)
    };
    let full = base().with_label("hash-reversal on");
    let light = base().light().with_label("hash-reversal off (light)");
    for scenario in [full, light] {
        group.bench_with_input(
            BenchmarkId::new("6s_run", scenario.label.clone()),
            &scenario,
            |b, s| {
                b.iter(|| {
                    let n = committed(s, 6);
                    assert!(n > 0);
                    n
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hash_reversal_ablation);
criterion_main!(benches);
