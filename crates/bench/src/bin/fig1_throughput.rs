//! Regenerates Fig. 1 (throughput over time) and Table 2.
fn main() {
    let ctx = setchain_bench::ExperimentCtx::from_env();
    println!("scale = {} (SETCHAIN_SCALE)", ctx.scale);
    setchain_bench::figures::fig1_throughput(&ctx);
}
