//! End-to-end add→epoch pipeline benchmark harness.
//!
//! Measures *wall-clock* adds/sec through a full simulated deployment: one
//! client per server injects elements, the servers run the configured
//! algorithm over the simulated ledger, and the metric is committed elements
//! divided by the host time the simulation took to execute. Unlike the
//! simulated throughput figures (which report simulated el/s and are
//! insensitive to host performance), this harness measures how fast the
//! *implementation* pushes elements through the hot path — broadcast fan-out,
//! signature verification, digest computation, batch compression — and is
//! the basis for the `BENCH_pr2.json` / `BENCH_pr3.json` perf baselines and
//! the CI regression gate.
//!
//! Two grids exist:
//!
//! * [`grid`] — the historical five points (every algorithm at the
//!   collector sizes the acceptance criteria reference), unchanged since
//!   PR 2 for trend continuity. Compresschain is *backlogged* here: the
//!   paper's 0.5 MB / 1.25 s ledger caps committed elements at ~1 000 el/s,
//!   so its committed counts are a property of the simulated bandwidth.
//! * [`auth_grid`] — drain-mode Hashchain points comparing the two client
//!   submission authentication modes (per-element MACs versus one MAC over
//!   each batch's Merkle root, PR 6): injection stops four simulated seconds
//!   before the end, so both modes commit exactly what they injected and
//!   the wall-clock delta isolates the authentication path.
//! * [`degraded_grid`] — the Hashchain workhorse point under 1% uniform
//!   message loss (PR 7): measures what the recovery machinery — consensus
//!   round timeouts, batch-request retries, epoch catch-up — costs on an
//!   imperfect network. The paper's cluster is lossless; this grid has no
//!   paper counterpart.
//! * [`shard_grid`] — the Hashchain workhorse drain point with each
//!   server's admission pipeline split across N consistent-hash shards
//!   (PR 8), next to its unsharded twin at the same seed. Sharding is
//!   host-side organization only, so the committed counts are identical
//!   across shard counts; the wall-clock delta isolates the sharded
//!   validation fan-out.
//! * [`store_grid`] — the Hashchain workhorse drain point with the
//!   persistent epoch store enabled (PR 9): every committed epoch is
//!   appended to an on-disk segment log as it gathers its proof quorum.
//!   Store I/O is host-side, so the committed counts equal the in-memory
//!   twin's exactly; the wall-clock delta isolates the persistence path
//!   (framing, checksumming, index maintenance). Off by default — the
//!   in-memory grids stay byte-identical to their baselines.
//! * [`adversary_grid`] — the Hashchain workhorse drain point with
//!   per-client admission quotas on, under one adversarial preset, next to
//!   its attack-free twin (PR 10). The attack client never records into the
//!   experiment trace, so `committed / wall` is *honest goodput* — the
//!   number the overload-protection acceptance envelope is stated over.
//!   Off by default (`--adversary`); quotas off keeps every historical
//!   grid byte-identical.
//! * [`compresschain_grid`] — drain-mode Compresschain points added with
//!   the PR 3 codec overhaul: larger ledger blocks lift the bandwidth cap,
//!   injection stops four simulated seconds before the end, and every
//!   injected element commits. Committed counts are therefore *exactly*
//!   reproducible across codec changes (they equal what was injected), and
//!   wall-clock is dominated by the real batch codec — materialize,
//!   chunked-LZ77 compress at the origin, chunk-parallel decompress at the
//!   three receiving peers. The `_light` point (the paper's "Compresschain
//!   light" ablation) skips delivery decompression.

use std::time::{Duration, Instant};

use setchain::{Algorithm, AuthMode};
use setchain_simnet::SimTime;
use setchain_workload::{Adversary, Deployment};

/// Parameters of one pipeline measurement.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Algorithm under test.
    pub algorithm: Algorithm,
    /// Collector batch size (ignored by Vanilla).
    pub batch: usize,
    /// Total injection rate over all clients, elements/second (simulated).
    pub rate: f64,
    /// Number of servers (and injection clients).
    pub servers: usize,
    /// Simulated run duration.
    pub sim_secs: u64,
    /// Simulated injection duration (less than `sim_secs`; the difference
    /// is drain time for batches, blocks and proof quorums).
    pub injection_secs: u64,
    /// Ledger block size override in bytes; 0 keeps the scenario default
    /// (the paper's 0.5 MB).
    pub block_bytes: usize,
    /// Run the algorithm's "light" ablation (Compresschain: no delivery
    /// decompression/validation).
    pub light: bool,
    /// How client submissions are authenticated (per-element MACs or one
    /// MAC over each injected batch's Merkle root).
    pub auth: AuthMode,
    /// Uniform message loss rate (0.0 = lossless, the paper's cluster).
    /// Nonzero only in the degraded-mode grid (PR 7): the loss draws come
    /// from the network's own RNG stream, so committed counts stay a pure
    /// function of the seed.
    pub loss_rate: f64,
    /// Number of admission shards per server (PR 8): each server routes
    /// element validation and `the_set` membership through a consistent-hash
    /// ring of this many shards. `1` (the default) is the exact unsharded
    /// code path; sharding is host-side organization only, so committed
    /// counts are identical across shard counts at the same seed.
    pub shards: usize,
    /// Persist committed epochs to an on-disk segment store (PR 9). The
    /// harness provisions a unique temporary directory per run and removes
    /// it afterwards; store I/O is host-side, so committed counts are
    /// identical to the in-memory twin at the same seed.
    pub store: bool,
    /// Enable per-client admission quotas at their default sizing (PR 10).
    /// Off for every historical grid — quotas off is the exact pre-quota
    /// pipeline, so the existing baselines stay byte-identical.
    pub quota: bool,
    /// Adversarial preset attacking server 0 (PR 10), `None` for the
    /// attack-free twin. Attack traffic never enters the experiment trace,
    /// so `committed` keeps measuring honest goodput only.
    pub adversary: Option<Adversary>,
    /// Label suffix distinguishing grid families (e.g. `_drain`).
    pub tag: &'static str,
    /// RNG seed.
    pub seed: u64,
}

impl PipelineConfig {
    /// Standard configuration for one algorithm/batch point: 4 servers,
    /// a rate high enough that the hot path dominates, 10 simulated seconds.
    pub fn standard(algorithm: Algorithm, batch: usize) -> Self {
        // Vanilla appends one ledger transaction per element and caps out
        // far below the batched algorithms; drive each point at a rate it
        // can sustain so the measurement reflects pipeline cost, not
        // backlog. (Rate tuning, not variant dispatch: apps are built
        // through the `AppFactory` regardless.)
        let rate = if algorithm.uses_collector() {
            5_000.0
        } else {
            1_000.0
        };
        PipelineConfig {
            algorithm,
            batch,
            rate,
            servers: 4,
            sim_secs: 10,
            injection_secs: 8,
            block_bytes: 0,
            light: false,
            auth: AuthMode::PerElement,
            loss_rate: 0.0,
            shards: 1,
            store: false,
            quota: false,
            adversary: None,
            tag: "",
            seed: 7,
        }
    }

    /// Quick variant for CI smoke runs: same shape, shorter simulated run.
    /// Compresschain is driven at a rate it can sustain without a mempool
    /// backlog — in the standard run its epoch commits only appear late in
    /// the window (proofs queue behind the batch backlog), which a short
    /// run would record as zero committed elements.
    pub fn quick(algorithm: Algorithm, batch: usize) -> Self {
        let mut config = PipelineConfig {
            sim_secs: 7,
            injection_secs: 5,
            ..Self::standard(algorithm, batch)
        };
        if algorithm == Algorithm::Compresschain {
            config.rate = 1_000.0;
        }
        config
    }

    /// Drain-mode Compresschain point: 4 MB ledger blocks lift the
    /// simulated bandwidth cap above the injection rate and four simulated
    /// seconds of drain let every batch, block and proof quorum land, so
    /// the committed count equals the injected count exactly — immune to
    /// codec-level wire-size changes — and wall-clock is dominated by real
    /// batch compression/decompression.
    pub fn compresschain_drain(batch: usize, light: bool) -> Self {
        PipelineConfig {
            algorithm: Algorithm::Compresschain,
            batch,
            rate: 5_000.0,
            servers: 4,
            sim_secs: 12,
            injection_secs: 8,
            block_bytes: 4 * 1024 * 1024,
            light,
            auth: AuthMode::PerElement,
            loss_rate: 0.0,
            shards: 1,
            store: false,
            quota: false,
            adversary: None,
            tag: if light { "_drain_light" } else { "_drain" },
            seed: 7,
        }
    }

    /// Quick (CI smoke) variant of [`Self::compresschain_drain`].
    pub fn compresschain_drain_quick(batch: usize, light: bool) -> Self {
        PipelineConfig {
            sim_secs: 7,
            injection_secs: 3,
            ..Self::compresschain_drain(batch, light)
        }
    }

    /// Drain-mode authentication point (PR 6): Hashchain at `batch`, with
    /// client submissions authenticated per `auth`. Drain-style for the same
    /// reason as [`Self::compresschain_drain`]: the two modes ship
    /// different message shapes, which perturbs the deterministic event
    /// schedule — but with four simulated seconds of drain every injected
    /// element commits, so the committed counts are *identical* between
    /// [`AuthMode::PerElement`] and [`AuthMode::BatchRoot`] at every point
    /// (they equal what was injected) and the wall-clock difference is
    /// purely the authentication path: per-element HMAC verification at
    /// every server versus one root MAC per batch plus Merkle recomputation.
    pub fn auth_drain(batch: usize, auth: AuthMode) -> Self {
        PipelineConfig {
            algorithm: Algorithm::Hashchain,
            batch,
            rate: 5_000.0,
            servers: 4,
            sim_secs: 12,
            injection_secs: 8,
            block_bytes: 4 * 1024 * 1024,
            light: false,
            auth,
            loss_rate: 0.0,
            shards: 1,
            store: false,
            quota: false,
            adversary: None,
            tag: match auth {
                AuthMode::BatchRoot => "_auth_root",
                _ => "_auth_pere",
            },
            seed: 7,
        }
    }

    /// Quick (CI smoke) variant of [`Self::auth_drain`].
    pub fn auth_drain_quick(batch: usize, auth: AuthMode) -> Self {
        PipelineConfig {
            sim_secs: 7,
            injection_secs: 3,
            ..Self::auth_drain(batch, auth)
        }
    }

    /// Degraded-mode point (PR 7): the Hashchain hot path under 1% uniform
    /// message loss. Consensus round timeouts, batch-request retries and the
    /// epoch catch-up protocol absorb the loss, so the point measures the
    /// cost of the recovery machinery on an imperfect network — the paper's
    /// cluster is lossless, so this grid has no paper counterpart. Loss
    /// draws consume the network's own RNG stream only: committed counts
    /// remain a pure function of the seed. The drain tail is twice the
    /// lossless grids' (loss inflates commit latency at saturation); past
    /// it the committed count plateaus at added minus the ~1% of `add`
    /// messages lost on the client→server leg, which the fire-and-forget
    /// injection driver never resends (sessions that need delivery use
    /// `add_with_retry`).
    pub fn degraded(batch: usize) -> Self {
        PipelineConfig {
            sim_secs: 16,
            loss_rate: 0.01,
            tag: "_loss1pct",
            ..Self::auth_drain(batch, AuthMode::PerElement)
        }
    }

    /// Quick (CI smoke) variant of [`Self::degraded`].
    pub fn degraded_quick(batch: usize) -> Self {
        PipelineConfig {
            sim_secs: 9,
            injection_secs: 3,
            ..Self::degraded(batch)
        }
    }

    /// Sharded-admission point (PR 8): the Hashchain workhorse drain point
    /// with each server's admission pipeline and `the_set` split across
    /// `shards` consistent-hash shards. Drain-style so committed counts are
    /// exact — and because sharding changes nothing the simulation sees,
    /// the committed count is *identical* across shard counts at the same
    /// seed (the conformance suite asserts this; the grid records it). The
    /// wall-clock delta isolates the sharded validation fan-out.
    ///
    /// Supported shard counts are 1, 2, 4 and 8 (the grid's comparison
    /// points); other values panic rather than silently mislabel a run.
    pub fn shard_drain(batch: usize, shards: usize) -> Self {
        PipelineConfig {
            shards,
            tag: match shards {
                1 => "_shard1",
                2 => "_shard2",
                4 => "_shard4",
                8 => "_shard8",
                _ => panic!("unsupported shard grid point: {shards}"),
            },
            ..Self::auth_drain(batch, AuthMode::PerElement)
        }
    }

    /// Quick (CI smoke) variant of [`Self::shard_drain`].
    pub fn shard_drain_quick(batch: usize, shards: usize) -> Self {
        PipelineConfig {
            sim_secs: 7,
            injection_secs: 3,
            ..Self::shard_drain(batch, shards)
        }
    }

    /// Store-backed point (PR 9): the Hashchain workhorse drain point with
    /// the persistent epoch store on. Drain-style so the committed count is
    /// exact — and since store I/O happens on the host outside simulated
    /// time, it *equals* the in-memory twin's at the same seed (the
    /// recovery suite asserts this; the grid records it). The wall-clock
    /// delta isolates the persistence path: per-record framing and
    /// checksumming, segment rotation and element-index maintenance.
    pub fn store_drain(batch: usize) -> Self {
        PipelineConfig {
            store: true,
            tag: "_store",
            ..Self::auth_drain(batch, AuthMode::PerElement)
        }
    }

    /// Quick (CI smoke) variant of [`Self::store_drain`].
    pub fn store_drain_quick(batch: usize) -> Self {
        PipelineConfig {
            sim_secs: 7,
            injection_secs: 3,
            ..Self::store_drain(batch)
        }
    }

    /// Adversarial point (PR 10): the Hashchain workhorse drain point with
    /// per-client quotas on and, for `Some(preset)`, one attack client
    /// hammering server 0. `None` is the attack-free twin at the same seed
    /// and quota sizing — the reference its goodput-under-attack envelope
    /// is measured against. The trace records honest traffic only, so
    /// `committed` is honest goodput in both cases.
    pub fn adversary_drain(preset: Option<Adversary>) -> Self {
        PipelineConfig {
            quota: true,
            adversary: preset,
            tag: match preset {
                None => "_adv_none",
                Some(Adversary::FloodClient) => "_adv_flood",
                Some(Adversary::ReplayStorm) => "_adv_replay",
                Some(Adversary::HotKeySkew) => "_adv_hotkey",
                Some(Adversary::ChurnStorm) => "_adv_churn",
                Some(other) => panic!("unsupported adversary grid point: {other}"),
            },
            ..Self::auth_drain(64, AuthMode::PerElement)
        }
    }

    /// Quick (CI smoke) variant of [`Self::adversary_drain`].
    pub fn adversary_drain_quick(preset: Option<Adversary>) -> Self {
        PipelineConfig {
            sim_secs: 7,
            injection_secs: 3,
            ..Self::adversary_drain(preset)
        }
    }

    /// Label used in reports and JSON keys, e.g. `hashchain_b64` or
    /// `compresschain_b256_drain`.
    pub fn label(&self) -> String {
        format!(
            "{}_b{}{}",
            self.algorithm.name().to_lowercase(),
            self.batch,
            self.tag
        )
    }
}

/// Outcome of one pipeline measurement.
#[derive(Clone, Copy, Debug)]
pub struct PipelineResult {
    /// Elements injected by the clients.
    pub added: u64,
    /// Elements committed (reached an epoch) by the end of the run.
    pub committed: u64,
    /// Host wall-clock time the simulation took to execute.
    pub wall: Duration,
    /// Committed elements per wall-clock second — the headline metric.
    pub adds_per_sec: f64,
    /// Admission-cache hits summed over every server's shards: probes the
    /// warmed cache answered without a fresh authenticator check.
    pub cache_hits: u64,
    /// Admission-cache misses summed over every server's shards.
    pub cache_misses: u64,
    /// Batch Merkle roots whose MAC verified, summed over servers (PR 6
    /// batch-root authentication; 0 under per-element MACs).
    pub batch_roots_verified: u64,
    /// Batch Merkle roots whose MAC failed, summed over servers.
    pub batch_roots_rejected: u64,
    /// Elements shed by per-client admission quotas, summed over servers
    /// (PR 10; always 0 with quotas off).
    pub quota_shed: u64,
}

/// Runs one deployment to completion and measures wall-clock adds/sec.
///
/// Deployment construction (PKI bootstrap, process allocation) is excluded
/// from the measured window; only the event loop — the add→epoch pipeline
/// itself — is timed.
pub fn run_pipeline(config: &PipelineConfig) -> PipelineResult {
    let mut builder = Deployment::builder(config.algorithm)
        .servers(config.servers)
        .rate(config.rate)
        .collector(config.batch)
        .injection_secs(config.injection_secs.max(1))
        .max_run_secs(config.sim_secs)
        .seed(config.seed);
    if config.block_bytes > 0 {
        builder = builder.block_bytes(config.block_bytes);
    }
    if config.light {
        builder = builder.light();
    }
    if config.loss_rate > 0.0 {
        builder = builder.loss_rate(config.loss_rate);
    }
    builder = builder.auth_mode(config.auth).shards(config.shards);
    if config.quota {
        builder = builder.quota(setchain::QuotaConfig::new());
    }
    if let Some(preset) = config.adversary {
        builder = builder.adversary(preset);
    }
    // Store-backed points get a unique temp directory per run (seed sweeps
    // run concurrently, so the path must not collide) which is removed
    // after the measurement — the store cost measured is pure appending,
    // never recovery of a previous run's segments.
    let mut store_dir = None;
    if config.store {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "setchain-bench-store-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        builder = builder.store(setchain::StoreConfig::new(dir.to_str().unwrap()));
        store_dir = Some(dir);
    }
    let mut deployment = builder.build();
    let start = Instant::now();
    deployment
        .sim
        .run_until(SimTime::from_secs(config.sim_secs));
    let wall = start.elapsed();
    if let Some(dir) = store_dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    // Honest-goodput counting: only trace-recorded (honest-client) elements
    // count as committed. Identical to the raw count on every attack-free
    // grid; under an adversary it keeps the attacker's admitted traffic out
    // of the headline metric.
    let committed = deployment
        .trace
        .honest_committed_count_by(SimTime::from_secs(config.sim_secs)) as u64;
    let added = deployment.trace.added_count() as u64;
    // Admission-path counters (satellite of PR 10): summed over servers
    // before the deployment drops. Cache hit/miss live on the per-shard
    // admission caches; root and quota counters on the server stats.
    let mut cache_hits = 0;
    let mut cache_misses = 0;
    let mut batch_roots_verified = 0;
    let mut batch_roots_rejected = 0;
    let mut quota_shed = 0;
    for i in 0..config.servers {
        let server = deployment.server(i);
        for cache in server.core().admission_caches() {
            cache_hits += cache.hits();
            cache_misses += cache.misses();
        }
        let stats = server.stats();
        batch_roots_verified += stats.batch_roots_verified;
        batch_roots_rejected += stats.batch_roots_rejected;
        quota_shed += stats.adds_rejected_quota;
    }
    PipelineResult {
        added,
        committed,
        wall,
        adds_per_sec: committed as f64 / wall.as_secs_f64().max(1e-9),
        cache_hits,
        cache_misses,
        batch_roots_verified,
        batch_roots_rejected,
        quota_shed,
    }
}

/// Runs one grid point at many seeds, one independent simulation per OS
/// thread, through the workspace's shared [`parallel_map`] primitive (the
/// outer-loop parallelism the HPC guides recommend: simulations stay
/// single-threaded and deterministic; concurrency comes from running many).
///
/// Returns the per-seed results in seed order — committed counts are a pure
/// function of each seed, so the output is reproducible no matter how many
/// worker threads the host grants. On a 1-core box this degrades to a
/// sequential sweep of the same numbers.
///
/// [`parallel_map`]: setchain_crypto::parallel_map
pub fn run_parallel_sims(config: &PipelineConfig, seeds: &[u64]) -> Vec<PipelineResult> {
    let threads = setchain_crypto::default_threads();
    // min_len 2: even a two-seed sweep fans out — each item is a whole
    // simulation, far above any spawn-cost threshold.
    setchain_crypto::parallel_map_min(seeds, threads, 2, |&seed| {
        let mut config = *config;
        config.seed = seed;
        run_pipeline(&config)
    })
}

/// Runs `config` `repeats` times and keeps the best (highest adds/sec) run,
/// which is the standard way to suppress scheduler noise in wall-clock
/// benchmarks.
pub fn run_pipeline_best_of(config: &PipelineConfig, repeats: usize) -> PipelineResult {
    assert!(repeats >= 1, "at least one repeat required");
    let mut best = run_pipeline(config);
    for _ in 1..repeats {
        let r = run_pipeline(config);
        if r.adds_per_sec > best.adds_per_sec {
            best = r;
        }
    }
    best
}

/// The historical (algorithm, batch) grid recorded since `BENCH_pr2.json`:
/// every algorithm at the two collector sizes the acceptance criteria
/// reference.
pub fn grid() -> Vec<(Algorithm, usize)> {
    vec![
        (Algorithm::Vanilla, 64),
        (Algorithm::Compresschain, 64),
        (Algorithm::Compresschain, 256),
        (Algorithm::Hashchain, 64),
        (Algorithm::Hashchain, 256),
    ]
}

/// The drain-mode Compresschain grid added with the PR 3 codec overhaul
/// (see the module docs): both collector sizes plus the light ablation.
pub fn compresschain_grid(quick: bool) -> Vec<PipelineConfig> {
    let point = if quick {
        PipelineConfig::compresschain_drain_quick
    } else {
        PipelineConfig::compresschain_drain
    };
    vec![
        point(64, false),
        point(64, true),
        point(256, false),
        point(256, true),
    ]
}

/// The authentication-mode grid added with the PR 6 batch-authentication
/// redesign: Hashchain at both collector sizes under each submission mode,
/// drain-style so the committed counts match across modes (see
/// [`PipelineConfig::auth_drain`]). Restricted to `modes` when the caller
/// asks for one mode only (the CI `--auth-mode` matrix point).
pub fn auth_grid(quick: bool, modes: &[AuthMode]) -> Vec<PipelineConfig> {
    let point = if quick {
        PipelineConfig::auth_drain_quick
    } else {
        PipelineConfig::auth_drain
    };
    let mut configs = Vec::new();
    for &batch in &[64usize, 256] {
        for &mode in modes {
            configs.push(point(batch, mode));
        }
    }
    configs
}

/// The degraded-mode grid added with the PR 7 fault-injection work: the
/// Hashchain workhorse point under 1% uniform loss (see
/// [`PipelineConfig::degraded`]).
pub fn degraded_grid(quick: bool) -> Vec<PipelineConfig> {
    let point = if quick {
        PipelineConfig::degraded_quick
    } else {
        PipelineConfig::degraded
    };
    vec![point(64)]
}

/// The sharded-admission grid added with the PR 8 shard-aware admission
/// work: the Hashchain workhorse drain point at `shards` plus its unsharded
/// twin (see [`PipelineConfig::shard_drain`]). Recording both at the same
/// seed makes the committed-count invariant — sharding never changes *what*
/// commits, only how each host validates it — visible in the baseline JSON.
/// `shards == 1` collapses to the single unsharded point.
pub fn shard_grid(quick: bool, shards: usize) -> Vec<PipelineConfig> {
    let point = if quick {
        PipelineConfig::shard_drain_quick
    } else {
        PipelineConfig::shard_drain
    };
    let mut configs = vec![point(64, 1)];
    if shards > 1 {
        configs.push(point(64, shards));
    }
    configs
}

/// The store-backed grid added with the PR 9 persistence work: the
/// Hashchain workhorse drain point with the epoch store on (see
/// [`PipelineConfig::store_drain`]). Empty unless the caller opts in with
/// `--store` — the default grids stay in-memory, so their baselines are
/// untouched.
pub fn store_grid(quick: bool, store: bool) -> Vec<PipelineConfig> {
    if !store {
        return Vec::new();
    }
    let point = if quick {
        PipelineConfig::store_drain_quick
    } else {
        PipelineConfig::store_drain
    };
    vec![point(64)]
}

/// The adversarial grid added with the PR 10 overload-protection work: the
/// Hashchain workhorse drain point with quotas on under `preset`, next to
/// its attack-free twin at the same seed and quota sizing (see
/// [`PipelineConfig::adversary_drain`]). Recording both makes goodput under
/// attack directly comparable: the trace holds honest traffic only, so the
/// attacked point's `committed / wall` *is* honest goodput. Empty unless
/// the caller opts in with `--adversary` — the default grids and their
/// baselines are untouched.
pub fn adversary_grid(quick: bool, preset: Option<Adversary>) -> Vec<PipelineConfig> {
    let Some(preset) = preset else {
        return Vec::new();
    };
    let point = if quick {
        PipelineConfig::adversary_drain_quick
    } else {
        PipelineConfig::adversary_drain
    };
    vec![point(None), point(Some(preset))]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_grid() {
        let cfg = PipelineConfig::standard(Algorithm::Hashchain, 64);
        assert_eq!(cfg.label(), "hashchain_b64");
        assert_eq!(cfg.servers, 4);
        let quick = PipelineConfig::quick(Algorithm::Vanilla, 64);
        assert!(quick.sim_secs < cfg.sim_secs);
        assert_eq!(grid().len(), 5);
        let drain = PipelineConfig::compresschain_drain(256, true);
        assert_eq!(drain.label(), "compresschain_b256_drain_light");
        assert!(drain.sim_secs - drain.injection_secs >= 4);
        assert_eq!(compresschain_grid(false).len(), 4);
        assert_eq!(compresschain_grid(true).len(), 4);
        for cfg in compresschain_grid(true) {
            assert!(cfg.sim_secs > cfg.injection_secs);
        }
        let both = [AuthMode::PerElement, AuthMode::BatchRoot];
        assert_eq!(auth_grid(false, &both).len(), 4);
        assert_eq!(auth_grid(true, &[AuthMode::BatchRoot]).len(), 2);
        let root = PipelineConfig::auth_drain(64, AuthMode::BatchRoot);
        assert_eq!(root.label(), "hashchain_b64_auth_root");
        assert!(root.sim_secs - root.injection_secs >= 4);
        let pere = PipelineConfig::auth_drain_quick(256, AuthMode::PerElement);
        assert_eq!(pere.label(), "hashchain_b256_auth_pere");
        assert!(pere.sim_secs > pere.injection_secs);
        let lossy = PipelineConfig::degraded(64);
        assert_eq!(lossy.label(), "hashchain_b64_loss1pct");
        assert!(lossy.loss_rate > 0.0);
        assert_eq!(degraded_grid(false).len(), 1);
        assert!(degraded_grid(true)[0].sim_secs < lossy.sim_secs);
        let sharded = PipelineConfig::shard_drain(64, 4);
        assert_eq!(sharded.label(), "hashchain_b64_shard4");
        assert_eq!(sharded.shards, 4);
        assert!(sharded.sim_secs - sharded.injection_secs >= 4);
        assert_eq!(shard_grid(false, 2).len(), 2);
        assert_eq!(shard_grid(true, 1).len(), 1);
        assert_eq!(shard_grid(true, 8)[1].label(), "hashchain_b64_shard8");
        assert_eq!(shard_grid(true, 2)[0].shards, 1);
        let stored = PipelineConfig::store_drain(64);
        assert_eq!(stored.label(), "hashchain_b64_store");
        assert!(stored.store);
        assert!(stored.sim_secs - stored.injection_secs >= 4);
        assert!(store_grid(false, false).is_empty(), "store grid is opt-in");
        assert_eq!(store_grid(true, true).len(), 1);
        assert!(store_grid(true, true)[0].sim_secs < stored.sim_secs);
        let twin = PipelineConfig::adversary_drain(None);
        assert_eq!(twin.label(), "hashchain_b64_adv_none");
        assert!(twin.quota && twin.adversary.is_none());
        let flood = PipelineConfig::adversary_drain(Some(Adversary::FloodClient));
        assert_eq!(flood.label(), "hashchain_b64_adv_flood");
        assert!(flood.sim_secs - flood.injection_secs >= 4);
        assert!(
            adversary_grid(false, None).is_empty(),
            "adversary grid is opt-in"
        );
        let adv = adversary_grid(true, Some(Adversary::ReplayStorm));
        assert_eq!(adv.len(), 2, "attack-free twin plus the attacked point");
        assert!(adv[0].adversary.is_none() && adv[0].quota);
        assert_eq!(adv[1].label(), "hashchain_b64_adv_replay");
        assert!(adv[1].sim_secs < flood.sim_secs);
    }

    #[test]
    #[should_panic(expected = "unsupported shard grid point")]
    fn odd_shard_counts_are_rejected_by_the_grid() {
        let _ = PipelineConfig::shard_drain(64, 3);
    }

    #[test]
    fn shard_drain_commits_identically_across_shard_counts() {
        // The invariant the shard grid records: sharding is host-side
        // organization only, so the same seed commits the same elements no
        // matter how many admission shards each server runs.
        let mut results = Vec::new();
        for shards in [1usize, 2, 4] {
            let mut cfg = PipelineConfig::shard_drain_quick(64, shards);
            cfg.rate = 500.0; // keep the test fast
            let result = run_pipeline(&cfg);
            assert!(result.added > 0);
            assert_eq!(
                result.committed, result.added,
                "shard drain ({shards} shards) left elements uncommitted"
            );
            results.push(result);
        }
        assert_eq!(results[0].committed, results[1].committed);
        assert_eq!(results[0].committed, results[2].committed);
    }

    #[test]
    fn degraded_point_commits_most_elements_deterministically() {
        // The property the degraded grid relies on: 1% loss is absorbed by
        // the recovery machinery (not a collapse), and the committed count
        // is a pure function of the seed even with loss draws in play.
        let mut cfg = PipelineConfig::degraded_quick(64);
        cfg.rate = 500.0; // keep the test fast
        let a = run_pipeline(&cfg);
        let b = run_pipeline(&cfg);
        assert!(a.added > 0);
        assert_eq!(a.committed, b.committed, "lossy runs must stay seeded");
        assert!(
            a.committed as f64 >= 0.8 * a.added as f64,
            "1% loss degraded too far: {}/{}",
            a.committed,
            a.added
        );
    }

    #[test]
    fn auth_drain_commits_identically_under_both_modes() {
        // The property BENCH_pr6.json's auth grid relies on: with drain
        // time, the committed count equals the injected count under either
        // authentication mode, so the two modes are directly comparable.
        let mut results = Vec::new();
        for auth in [AuthMode::PerElement, AuthMode::BatchRoot] {
            let mut cfg = PipelineConfig::auth_drain_quick(64, auth);
            cfg.rate = 500.0; // keep the test fast
            let result = run_pipeline(&cfg);
            assert!(result.added > 0);
            assert_eq!(
                result.committed, result.added,
                "auth drain ({auth:?}) left elements uncommitted"
            );
            results.push(result);
        }
        assert_eq!(
            results[0].committed, results[1].committed,
            "same seed, same injected workload: committed counts must match"
        );
    }

    #[test]
    fn store_drain_commits_identically_to_the_in_memory_twin() {
        // The invariant the store grid records: persistence is host-side,
        // so the same seed commits the same elements with the store on or
        // off — the delta the grid measures is wall-clock only.
        let mut stored = PipelineConfig::store_drain_quick(64);
        stored.rate = 500.0; // keep the test fast
        let mut plain = stored;
        plain.store = false;
        let a = run_pipeline(&stored);
        let b = run_pipeline(&plain);
        assert!(a.added > 0);
        assert_eq!(
            a.committed, a.added,
            "store drain left elements uncommitted"
        );
        assert_eq!((a.added, a.committed), (b.added, b.committed));
    }

    #[test]
    fn adversary_point_keeps_honest_traffic_committing() {
        // The property the adversary grid records: with per-client quotas
        // on, a flooding attacker sheds against its own bucket while every
        // honest (trace-recorded) element still commits, and the shed
        // traffic shows up attributed in the quota counter.
        let mut cfg = PipelineConfig::adversary_drain_quick(Some(Adversary::FloodClient));
        cfg.rate = 500.0; // keep the test fast
        let result = run_pipeline(&cfg);
        assert!(result.added > 0);
        assert_eq!(
            result.committed, result.added,
            "attack run left honest elements uncommitted"
        );
        assert!(
            result.quota_shed > 0,
            "flood preset should trip the attacker's quota"
        );
        let mut twin = cfg;
        twin.adversary = None;
        let calm = run_pipeline(&twin);
        assert_eq!(calm.quota_shed, 0, "honest-only run must shed nothing");
        assert_eq!(
            calm.committed, calm.added,
            "attack-free twin left elements uncommitted"
        );
    }

    #[test]
    fn quick_pipeline_commits_elements() {
        let mut cfg = PipelineConfig::quick(Algorithm::Hashchain, 64);
        cfg.rate = 500.0;
        let result = run_pipeline(&cfg);
        assert!(result.added > 0, "clients injected nothing");
        assert!(result.committed > 0, "nothing committed");
        assert!(result.adds_per_sec > 0.0);
    }

    #[test]
    fn parallel_sims_match_sequential_seed_sweeps() {
        let mut cfg = PipelineConfig::quick(Algorithm::Hashchain, 64);
        cfg.rate = 400.0;
        let seeds = [3u64, 9, 27];
        let parallel = run_parallel_sims(&cfg, &seeds);
        assert_eq!(parallel.len(), seeds.len());
        for (r, &seed) in parallel.iter().zip(&seeds) {
            let mut one = cfg;
            one.seed = seed;
            let sequential = run_pipeline(&one);
            assert_eq!(
                (r.added, r.committed),
                (sequential.added, sequential.committed),
                "seed {seed}: parallel sweep must reproduce the sequential run"
            );
            assert!(r.committed > 0, "seed {seed} committed nothing");
        }
    }

    #[test]
    fn drain_mode_commits_every_injected_element() {
        // The property the drain grid exists for: committed == added, so
        // the committed counts in BENCH_pr3.json are exactly reproducible.
        let mut cfg = PipelineConfig::compresschain_drain_quick(64, false);
        cfg.rate = 500.0; // keep the test fast
        let result = run_pipeline(&cfg);
        assert!(result.added > 0);
        assert_eq!(
            result.committed, result.added,
            "drain-mode run left elements uncommitted"
        );
    }
}
