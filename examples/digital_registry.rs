//! Digital-credential registry on a Setchain (the paper's motivating use
//! case: MIT digital diplomas, government registries).
//!
//! A university issues diploma records; each record only needs to be
//! *registered and provable*, not ordered against other diplomas — exactly
//! the relaxation Setchain exploits. This example runs a 7-server
//! Compresschain deployment, registers a graduating class through a typed
//! client session, and then plays the role of an employer verifying one
//! diploma with `f + 1` epoch-proofs from a single server.
//!
//! ```sh
//! cargo run --release -p setchain-bench --example digital_registry
//! ```

use setchain::Algorithm;
use setchain_simnet::SimTime;
use setchain_workload::Deployment;

fn main() {
    let mut deployment = Deployment::builder(Algorithm::Compresschain)
        .label("digital-registry")
        .servers(7)
        .rate(300.0) // other registry traffic in the background
        .collector(50)
        .injection_secs(6)
        .max_run_secs(40)
        .seed(7)
        .build();
    let f = deployment.scenario.setchain_f();

    // The university is a Setchain client session with its own registered
    // key. A graduating class of 40 diplomas goes in through server 1; a
    // real deployment would store the hash of the credential document — here
    // the content seed stands in for it.
    let mut university = deployment.client_session(200, 0xD1_70_0A);
    let diplomas: Vec<_> = (0..40)
        .map(|i| university.add(SimTime::from_millis(400 + 25 * i), 1, 620, 0xACAD_0000 + i))
        .collect();
    println!("Registering {} diplomas through server 1 …", diplomas.len());

    // Later, the employer asks a different server for the state and for the
    // epochs that might contain the diploma of interest.
    university.get(SimTime::from_secs(25), 5);
    university.get_epochs(SimTime::from_secs(26), 5, 1..=40);
    university.install(&mut deployment);

    deployment.sim.run_until(SimTime::from_secs(32));

    // The employer wants to verify diploma #17.
    let wanted = diplomas[17];
    let outcome = university.outcome(&deployment);
    match outcome.epochs.iter().find(|e| e.contains(wanted.id)) {
        Some(epoch) => {
            println!(
                "Diploma {:?} found in epoch {} ({} records, {} proofs): {:?}",
                wanted.id,
                epoch.epoch,
                epoch.elements.len(),
                epoch.proof_count,
                epoch.verification
            );
            println!(
                "A single server response was enough: f + 1 = {} proofs bound the epoch.",
                f + 1
            );
        }
        None => {
            println!("Diploma not yet in a retrievable epoch — the employer should retry later.")
        }
    }

    // Registry-wide summary.
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(32));
    let added = deployment.trace.added_count();
    println!("Registry totals: {added} records added, {committed} already committed with a proof quorum.");
    let s0 = deployment.server(0);
    println!(
        "Server 0 history: {} epochs, {} records; Unique-Epoch holds: {}",
        s0.state().epoch(),
        s0.state().history_elements(),
        s0.state().check_unique_epoch()
    );
}
