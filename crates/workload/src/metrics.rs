//! Metrics derived from a run: throughput over time (Fig. 1, Fig. 2 left),
//! efficiency (Fig. 3), commit-time percentiles (Fig. 5) and the per-stage
//! latency CDF (Fig. 4).

use setchain::trace::ElementRecord;
use setchain::SetchainTrace;
use setchain_ledger::LedgerTrace;
use setchain_simnet::SimTime;

/// Throughput over time: committed elements per second, smoothed with a
/// rolling window (the paper plots a 9-second rolling average).
#[derive(Clone, Debug)]
pub struct ThroughputSeries {
    /// `(time in seconds, committed elements per second)` samples, one per
    /// second of simulated time.
    pub samples: Vec<(f64, f64)>,
    /// Window length in seconds used for smoothing.
    pub window_secs: u64,
}

impl ThroughputSeries {
    /// Computes the series from a trace, sampling every second up to `until`.
    pub fn compute(trace: &SetchainTrace, window_secs: u64, until: SimTime) -> Self {
        assert!(window_secs >= 1, "window must be at least one second");
        let records = trace.element_records();
        let horizon = until.as_secs_f64().ceil() as u64;
        // Commits bucketed per second.
        let mut per_second = vec![0u64; (horizon + 1) as usize];
        for r in &records {
            if let Some(t) = r.committed_at {
                let s = t.as_secs_f64().floor() as u64;
                if s <= horizon {
                    per_second[s as usize] += 1;
                }
            }
        }
        let mut samples = Vec::with_capacity(horizon as usize + 1);
        for s in 0..=horizon {
            let lo = s.saturating_sub(window_secs - 1);
            let count: u64 = per_second[lo as usize..=s as usize].iter().sum();
            let span = (s - lo + 1) as f64;
            samples.push((s as f64, count as f64 / span));
        }
        ThroughputSeries {
            samples,
            window_secs,
        }
    }

    /// Highest smoothed throughput observed.
    pub fn peak(&self) -> f64 {
        self.samples.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// Average committed throughput between `from` and `to` seconds.
    pub fn average_between(&self, from: f64, to: f64) -> f64 {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|(t, _)| *t >= from && *t <= to)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            return 0.0;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// The paper's efficiency metric: committed elements divided by added
/// elements, evaluated after 50, 75 and 100 seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Efficiency {
    /// Efficiency after 50 s.
    pub at_50s: f64,
    /// Efficiency after 75 s.
    pub at_75s: f64,
    /// Efficiency after 100 s.
    pub at_100s: f64,
}

impl Efficiency {
    /// Computes the efficiency values from a trace.
    pub fn compute(trace: &SetchainTrace) -> Self {
        let added = trace.added_count().max(1) as f64;
        let at = |secs: u64| trace.committed_count_by(SimTime::from_secs(secs)) as f64 / added;
        Efficiency {
            at_50s: at(50),
            at_75s: at(75),
            at_100s: at(100),
        }
    }
}

/// Commit-time milestones (Fig. 5 / Appendix F): when the first element and
/// the 10%…50% fractions of all added elements had committed.
#[derive(Clone, Debug)]
pub struct CommitTimes {
    /// Commit time of the first element to commit, in seconds.
    pub first: Option<f64>,
    /// `(fraction, time in seconds)` pairs for 10%, 20%, 30%, 40%, 50%.
    /// `None` when that fraction never committed within the run.
    pub fractions: Vec<(f64, Option<f64>)>,
}

impl CommitTimes {
    /// Computes the milestones from a trace.
    pub fn compute(trace: &SetchainTrace) -> Self {
        let records = trace.element_records();
        let total = records.len();
        let mut commit_times: Vec<f64> = records
            .iter()
            .filter_map(|r| r.committed_at.map(|t| t.as_secs_f64()))
            .collect();
        commit_times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let first = commit_times.first().copied();
        let fractions = [0.1, 0.2, 0.3, 0.4, 0.5]
            .iter()
            .map(|&frac| {
                let needed = (total as f64 * frac).ceil() as usize;
                let time = if needed == 0 || commit_times.len() < needed {
                    None
                } else {
                    Some(commit_times[needed - 1])
                };
                (frac, time)
            })
            .collect();
        CommitTimes { first, fractions }
    }
}

/// Latencies of one element through the five stages of Fig. 4.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageSample {
    /// Add → first CometBFT mempool.
    pub first_mempool: Option<f64>,
    /// Add → f+1 mempools.
    pub quorum_mempools: Option<f64>,
    /// Add → all mempools.
    pub all_mempools: Option<f64>,
    /// Add → included in a ledger block.
    pub ledger: Option<f64>,
    /// Add → epoch has f+1 epoch-proofs (committed).
    pub committed: Option<f64>,
}

/// Per-stage latency distributions (Fig. 4). Requires a run with the
/// detailed trace enabled.
#[derive(Clone, Debug, Default)]
pub struct StageLatencies {
    /// One sample per element that reached at least the first stage.
    pub samples: Vec<StageSample>,
}

impl StageLatencies {
    /// Joins the Setchain trace with the ledger trace. `f` is the Setchain
    /// fault bound and `n` the number of servers.
    pub fn compute(trace: &SetchainTrace, ledger_trace: &LedgerTrace, f: usize, n: usize) -> Self {
        let records: Vec<ElementRecord> = trace.element_records();
        let mut samples = Vec::with_capacity(records.len());
        for r in &records {
            let Some(tx) = trace.tx_of(&r.id) else {
                continue;
            };
            let rel = |t: Option<SimTime>| t.map(|t| (t - r.added_at).as_secs_f64());
            samples.push(StageSample {
                first_mempool: rel(ledger_trace.first_mempool(&tx)),
                quorum_mempools: rel(ledger_trace.kth_mempool(&tx, f + 1)),
                all_mempools: rel(ledger_trace.kth_mempool(&tx, n)),
                ledger: rel(ledger_trace.ledger_time(&tx)),
                committed: rel(r.committed_at),
            });
        }
        StageLatencies { samples }
    }

    /// Empirical CDF of one stage: the sorted latencies (x values for a CDF
    /// plot with `y = i / len`). Elements that never reached the stage are
    /// excluded.
    pub fn cdf(&self, stage: impl Fn(&StageSample) -> Option<f64>) -> Vec<f64> {
        let mut values: Vec<f64> = self.samples.iter().filter_map(stage).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        values
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of a stage's latency, if any element
    /// reached it.
    pub fn quantile(&self, stage: impl Fn(&StageSample) -> Option<f64>, q: f64) -> Option<f64> {
        let values = self.cdf(stage);
        if values.is_empty() {
            return None;
        }
        let idx = ((values.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(values[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain::ElementId;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn id(i: u64) -> ElementId {
        ElementId::new(0, i)
    }

    /// Builds a trace where `count` elements are added at 1 el/s starting at
    /// t=0 and each commits exactly `delay_s` later.
    fn uniform_trace(count: u64, delay_s: u64) -> SetchainTrace {
        let trace = SetchainTrace::new();
        for i in 0..count {
            trace.record_add(id(i), SimTime::from_secs(i));
            trace.record_epoch_assignment(id(i), i + 1, SimTime::from_secs(i + delay_s / 2));
            trace.record_epoch_commit(i + 1, SimTime::from_secs(i + delay_s));
        }
        trace
    }

    #[test]
    fn throughput_series_reports_steady_rate() {
        let trace = uniform_trace(60, 2);
        let series = ThroughputSeries::compute(&trace, 9, SimTime::from_secs(70));
        // Steady state: one element committed per second.
        let steady = series.average_between(20.0, 50.0);
        assert!((steady - 1.0).abs() < 0.2, "steady={steady}");
        assert!(series.peak() >= 1.0);
        assert_eq!(series.window_secs, 9);
        assert!(!series.samples.is_empty());
    }

    #[test]
    fn efficiency_counts_committed_fraction() {
        // 100 elements added at t<50; half commit before 50 s, the rest at 80.
        let trace = SetchainTrace::new();
        for i in 0..100u64 {
            trace.record_add(id(i), t(i * 100));
            trace.record_epoch_assignment(id(i), i + 1, t(i * 100 + 10));
            let commit = if i < 50 {
                t(i * 100 + 500)
            } else {
                SimTime::from_secs(80)
            };
            trace.record_epoch_commit(i + 1, commit);
        }
        let eff = Efficiency::compute(&trace);
        assert!((eff.at_50s - 0.5).abs() < 0.01);
        assert!((eff.at_100s - 1.0).abs() < 1e-9);
        assert!(eff.at_75s < eff.at_100s + 1e-9);
    }

    #[test]
    fn commit_times_milestones() {
        let trace = uniform_trace(100, 3);
        let ct = CommitTimes::compute(&trace);
        // First element added at 0 commits at 3 s.
        assert_eq!(ct.first, Some(3.0));
        // 10% (10th element, added at t=9) commits at 12 s.
        let ten_pct = ct.fractions[0].1.unwrap();
        assert!((ten_pct - 12.0).abs() < 1.01, "{ten_pct}");
        // 50% commits later than 10%.
        assert!(ct.fractions[4].1.unwrap() > ten_pct);
    }

    #[test]
    fn commit_times_with_nothing_committed() {
        let trace = SetchainTrace::new();
        trace.record_add(id(1), t(0));
        let ct = CommitTimes::compute(&trace);
        assert_eq!(ct.first, None);
        assert!(ct.fractions.iter().all(|(_, t)| t.is_none()));
    }

    #[test]
    fn stage_latencies_join_setchain_and_ledger_traces() {
        use setchain_crypto::ProcessId;
        use setchain_ledger::TxId;
        let trace = SetchainTrace::detailed();
        let ledger = LedgerTrace::new();
        let n = 4;
        for i in 0..10u64 {
            let added = t(i * 100);
            trace.record_add(id(i), added);
            trace.record_tx_assignment(id(i), TxId(i as u128));
            for v in 0..n {
                ledger.record_mempool_arrival(
                    TxId(i as u128),
                    ProcessId::server(v),
                    added + setchain_simnet::SimDuration::from_millis(10 * (v as u64 + 1)),
                );
            }
            ledger.record_commit(
                TxId(i as u128),
                1,
                added + setchain_simnet::SimDuration::from_millis(1_000),
            );
            trace.record_epoch_assignment(
                id(i),
                1,
                added + setchain_simnet::SimDuration::from_millis(1_000),
            );
        }
        trace.record_epoch_commit(1, t(5_000));
        let stages = StageLatencies::compute(&trace, &ledger, 1, n);
        assert_eq!(stages.samples.len(), 10);
        let first = stages.quantile(|s| s.first_mempool, 0.5).unwrap();
        let quorum = stages.quantile(|s| s.quorum_mempools, 0.5).unwrap();
        let all = stages.quantile(|s| s.all_mempools, 0.5).unwrap();
        let ledger_q = stages.quantile(|s| s.ledger, 0.5).unwrap();
        let committed = stages.quantile(|s| s.committed, 0.5).unwrap();
        assert!(first <= quorum && quorum <= all, "{first} {quorum} {all}");
        assert!(all <= ledger_q && ledger_q <= committed);
        assert_eq!(stages.cdf(|s| s.first_mempool).len(), 10);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let trace = SetchainTrace::new();
        let _ = ThroughputSeries::compute(&trace, 0, SimTime::from_secs(1));
    }
}
