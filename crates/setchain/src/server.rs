//! Code shared by the three Setchain server implementations: client `add` /
//! `get` handling, epoch-proof bookkeeping and epoch creation.

use setchain_crypto::{
    parallel_map, parallel_map_min, sign_with, Digest512, FxHashMap, FxHashSet, HmacSha256Key,
    HmacSha512Key, KeyPair, KeyRegistry, ProcessId, SigVerifier, Signature,
};
use setchain_ledger::AppCtx;
use setchain_simnet::{SimDuration, SimTime};

use setchain_store::{DiskStore, EpochRecord, StateStore};

use crate::admission::AdmissionCache;
use crate::batch_auth::AuthedBatch;
use crate::byzantine::ServerByzMode;
use crate::config::{SetchainConfig, StoreConfig};
use crate::element::{Element, ElementId};
use crate::messages::SetchainMsg;
use crate::proofs::{epoch_hash, make_epoch_proof_with_key, EpochProof};
use crate::shard::ShardRing;
use crate::state::SetchainState;
use crate::trace::SetchainTrace;
use crate::tx::{HashBatch, SetchainTx};

/// Convenience alias for the application context all Setchain servers use.
pub type Ctx<'a, 'b, 'c> = AppCtx<'a, 'b, 'c, SetchainTx, SetchainMsg>;

/// Counters exposed by every Setchain server for tests and experiment
/// reports.
///
/// The struct is `#[non_exhaustive]`: new counters will be added as new
/// subsystems land. Downstream code should read fields (all public) and
/// construct instances with [`ServerStats::default`], never with a struct
/// literal, so it keeps compiling across field additions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServerStats {
    /// Client `add` requests accepted (valid, not previously seen).
    pub adds_accepted: u64,
    /// Client `add` requests rejected because the element failed validation
    /// (bad authenticator, unknown or server claimant, degenerate size —
    /// also counts adds swallowed by a Byzantine `DropClientAdds` server).
    pub adds_rejected_invalid: u64,
    /// Client `add` requests rejected because the element was already in
    /// `the_set` or stamped into an epoch.
    pub adds_rejected_duplicate: u64,
    /// Elements shed by the admission quota (see [`crate::quota`]) before
    /// any validation CPU was spent on them; 0 unless a quota is configured.
    pub adds_rejected_quota: u64,
    /// Epochs this server has created/consolidated.
    pub epochs_created: u64,
    /// Valid epoch-proofs received from the ledger.
    pub proofs_received: u64,
    /// Invalid epoch-proofs discarded.
    pub proofs_rejected: u64,
    /// Invalid elements discarded during block processing.
    pub elements_rejected: u64,
    /// Batches flushed from the collector (0 for Vanilla).
    pub batches_flushed: u64,
    /// Compresschain: peer batches decompressed on block delivery (the
    /// origin skips its own frames; 0 under the "light" ablation).
    pub batches_decompressed: u64,
    /// Compresschain: delivered batch frames that failed to decompress to
    /// the declared element bytes (always 0 unless the codec is broken).
    pub batch_decompress_failures: u64,
    /// Hashchain: `Request_batch` calls sent.
    pub batch_requests_sent: u64,
    /// Hashchain: `Request_batch` calls answered.
    pub batch_requests_served: u64,
    /// Hashchain: batch requests that timed out or failed verification.
    pub batch_requests_failed: u64,
    /// `get` / `get_epoch` requests answered.
    pub gets_served: u64,
    /// Batch-authenticated envelopes whose root MAC verified fresh (cache
    /// hits on re-gossiped batches are visible on the admission cache's
    /// root counters instead).
    pub batch_roots_verified: u64,
    /// Batch-authenticated envelopes rejected fresh (bad MAC, tampered or
    /// reordered contents, foreign/unknown owner, empty batch).
    pub batch_roots_rejected: u64,
    /// Catch-up requests this server has issued (restart probes, gap
    /// detections, and follow-up pages of a paged catch-up).
    pub catchup_requests: u64,
    /// Epochs installed from peer catch-up responses after verifying
    /// `f + 1` epoch-proof signers.
    pub epochs_replayed: u64,
    /// Catch-up bundles refused: out-of-order epoch or fewer than `f + 1`
    /// distinct valid proof signers.
    pub catchup_rejections: u64,
    /// Committed epochs appended to this server's persistent store this
    /// session (0 when no store is configured; epochs recovered at open are
    /// not re-counted).
    pub epochs_persisted: u64,
    /// Elements evicted from RAM after their epoch became durable
    /// (bounded-memory mode; 0 unless `retain_epochs` is set).
    pub elements_evicted: u64,
    /// Total bytes across this server's store segments (recovered bytes
    /// included), refreshed on every append.
    pub store_bytes: u64,
}

impl ServerStats {
    /// Total rejected client adds across every cause (the pre-split
    /// `adds_rejected` rollup).
    pub fn adds_rejected(&self) -> u64 {
        self.adds_rejected_invalid + self.adds_rejected_duplicate + self.adds_rejected_quota
    }
}

/// One admission shard's counters: the per-shard rollup behind
/// [`ServerCore::shard_stats`]. With one shard (the default pipeline) the
/// single entry mirrors the whole server.
///
/// `#[non_exhaustive]` like [`ServerStats`]: read the fields, never
/// construct downstream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ShardStats {
    /// The shard index on the admission ring.
    pub shard: usize,
    /// Memoized admission verdicts held by this shard's cache.
    pub cached_verdicts: u64,
    /// Admission cache hits on this shard.
    pub admission_hits: u64,
    /// Admission cache misses on this shard.
    pub admission_misses: u64,
    /// Elements of `the_set` the ring routed to this shard.
    pub set_len: u64,
}

/// State and helpers shared by `VanillaApp`, `CompresschainApp` and
/// `HashchainApp`.
pub struct ServerCore {
    /// This server's key pair.
    pub keys: KeyPair,
    /// The PKI.
    pub registry: KeyRegistry,
    /// Deployment configuration.
    pub config: SetchainConfig,
    /// The Setchain state (`the_set`, `epoch`, `history`, `proofs`).
    pub state: SetchainState,
    /// Experiment trace sink.
    pub trace: SetchainTrace,
    /// Application-level behaviour.
    pub byz: ServerByzMode,
    /// Counters.
    pub stats: ServerStats,
    /// Precomputed HMAC key schedules, one per registered (non-server)
    /// client this server has validated elements from. Populated lazily;
    /// bounded by the number of clients.
    client_keys: FxHashMap<ProcessId, HmacSha256Key>,
    /// Memoized admission verdicts, one cache per admission shard: an
    /// element's authenticator digest is checked exactly once per server,
    /// keyed on the element id and guarded by the full
    /// `(client, size, seed, mac)` identity — see [`AdmissionCache`]. The
    /// ring routes each element to its shard's cache; with one shard (the
    /// default) this is exactly the old single cache. Verdicts that depend
    /// on registry *absence* (unknown client) are never cached, so a client
    /// registered later is still picked up; replacing an
    /// already-registered key mid-run is not supported by the caches.
    admission: Vec<AdmissionCache>,
    /// The consistent-hash ring mapping element ids to admission shards
    /// (see [`crate::shard`]). Built once from `config.shards`.
    ring: ShardRing,
    /// This server's own HMAC key schedule: signing proofs and hash-batches
    /// does not rebuild the key pads per signature.
    own_key: HmacSha512Key,
    /// Per-signer verification schedules for peer proofs and hash-batches.
    verifier: SigVerifier,
    /// Reused index scratch for batched validation (cache misses).
    miss_scratch: Vec<usize>,
    /// Reused element scratch for batched validation (pending checks).
    pending_scratch: Vec<Element>,
    /// Worker threads for batched parallel validation (resolved once).
    threads: usize,
    /// Epochs this server has *derived* from the ledger (one
    /// [`Self::create_epoch`] call each). Normally equal to
    /// `state.epoch()`; it lags behind after catch-up fast-forwards the
    /// state, and `create_epoch` then skips re-derivation until the ledger
    /// replay passes the catch-up frontier.
    derived_epochs: u64,
    /// `from_epoch` and send time of the outstanding catch-up request, if
    /// any — a rate limit so repeated gap signals do not flood peers. The
    /// entry *expires* after [`CATCHUP_RETRY`]: a request lost to a
    /// partition or crash must not wedge the server behind the tip forever.
    catchup_pending: Option<(u64, SimTime)>,
    /// The persistent epoch store, when `config.store` is set. Opened (and
    /// replayed into `state`) at construction; `None` is the exact pre-store
    /// in-memory pipeline. Store I/O happens on the host, outside simulated
    /// time, so enabling it never perturbs schedules.
    store: Option<Box<dyn StateStore>>,
    /// The durable frontier: every epoch `<= persisted` is on the store
    /// with its digest and `f + 1` proof quorum. Advanced by
    /// [`Self::persist_committed`] strictly in epoch order, so quorums that
    /// land out of order are flushed as soon as the gap before them closes.
    persisted: u64,
    /// Per-client admission quotas, when `config.quota` is set. Probed by
    /// [`Self::admit_source`] ahead of every client-facing admission path;
    /// `None` is the exact pre-quota pipeline (no probe, no reply, no CPU).
    quota: Option<crate::quota::QuotaState>,
}

/// Upper bound on epochs shipped in one [`SetchainMsg::CatchupResponse`].
/// A requester that is further behind pages: applying a full response
/// triggers a follow-up request to the same responder.
pub const MAX_CATCHUP_EPOCHS: usize = 64;

/// How long an outstanding catch-up request suppresses new ones. After this
/// the request is presumed lost (dropped by a partition, or the responder
/// crashed) and the next gap signal is allowed to re-request.
pub const CATCHUP_RETRY: SimDuration = SimDuration(2_000_000); // 2 s

impl ServerCore {
    /// Creates the shared server state.
    pub fn new(
        keys: KeyPair,
        registry: KeyRegistry,
        config: SetchainConfig,
        trace: SetchainTrace,
        byz: ServerByzMode,
    ) -> Self {
        let own_key = HmacSha512Key::new(&keys.secret.0);
        let shards = config.shards.max(1);
        let mut core = ServerCore {
            keys,
            registry,
            state: SetchainState::with_shards(shards),
            config,
            trace,
            byz,
            stats: ServerStats::default(),
            client_keys: FxHashMap::default(),
            admission: (0..shards).map(|_| AdmissionCache::new()).collect(),
            ring: ShardRing::new(shards),
            own_key,
            verifier: SigVerifier::new(),
            miss_scratch: Vec::new(),
            pending_scratch: Vec::new(),
            threads: setchain_crypto::default_threads(),
            derived_epochs: 0,
            catchup_pending: None,
            store: None,
            persisted: 0,
            quota: None,
        };
        if let Some(quota_cfg) = core.config.quota {
            core.quota = Some(crate::quota::QuotaState::new(quota_cfg));
        }
        if let Some(store_cfg) = core.config.store.clone() {
            core.open_store(&store_cfg);
        }
        core
    }

    /// Opens (or creates) this server's segment store under
    /// `{dir}/server-{index}` and replays every stored epoch into `state`:
    /// elements are re-recorded (which re-derives the digest — asserted
    /// byte-equal to the stored one, so silent store corruption is fatal
    /// rather than divergent) and the stored `f + 1` proof quorum is
    /// re-added, committing each epoch without re-verification. The ledger
    /// replay that follows then signs the recovered digests through the
    /// [`Self::create_epoch`] fast-forward path (`derived_epochs` stays 0),
    /// exactly as after a peer catch-up.
    ///
    /// A store that cannot be opened or read is a fatal configuration /
    /// hardware error: this panics rather than silently running volatile.
    fn open_store(&mut self, cfg: &StoreConfig) {
        let dir = format!("{}/server-{}", cfg.dir, self.keys.id.server_index());
        let store = DiskStore::open(&dir, cfg.segment_bytes, cfg.checkpoint_every)
            .unwrap_or_else(|e| panic!("setchain-store: cannot open {dir}: {e}"));
        let tip = store.tip();
        for epoch in 1..=tip {
            let record = store
                .load_epoch(epoch)
                .unwrap_or_else(|e| panic!("setchain-store: cannot read epoch {epoch}: {e}"))
                .unwrap_or_else(|| panic!("setchain-store: epoch {epoch} below tip missing"));
            let recorded = self
                .state
                .record_epoch(Self::unpack_elements(&record.elements));
            debug_assert_eq!(recorded, epoch, "segment scan enforces sequential epochs");
            let digest = self.state.epoch_digest(epoch).expect("just recorded");
            assert_eq!(
                digest.as_bytes(),
                &record.digest[..],
                "setchain-store: epoch {epoch} digest mismatch (corrupt store)"
            );
            for proof in Self::unpack_proofs(&record.proofs) {
                self.state.add_proof(proof);
            }
        }
        self.persisted = tip;
        self.stats.store_bytes = store.stats().bytes;
        self.store = Some(Box::new(store));
        self.apply_retention();
    }

    /// Flushes every committed-but-unpersisted epoch to the store, in
    /// order: an epoch is flushed once it is the next after the durable
    /// frontier *and* holds its `f + 1` proof quorum. Called on every
    /// quorum event (ledger proofs and catch-up installs), so quorums
    /// reached out of order drain as soon as the gap closes. A store append
    /// failure is fatal — continuing would desynchronize the durable
    /// frontier from `state`.
    fn persist_committed(&mut self) {
        let Some(store) = self.store.as_mut() else {
            return;
        };
        let quorum = self.config.proof_quorum();
        while self.persisted < self.state.epoch()
            && self.state.proof_count(self.persisted + 1) >= quorum
        {
            let epoch = self.persisted + 1;
            let digest = self.state.epoch_digest(epoch).expect("committed epoch");
            let elements = self.state.epoch_elements(epoch).expect("not yet evicted");
            let record = EpochRecord::new(
                epoch,
                digest.0,
                Self::pack_elements(elements),
                Self::pack_proofs(self.state.proofs_for(epoch)),
            );
            store
                .append_epoch(&record)
                .unwrap_or_else(|e| panic!("setchain-store: cannot append epoch {epoch}: {e}"));
            self.persisted = epoch;
            self.stats.epochs_persisted += 1;
        }
        self.stats.store_bytes = store.stats().bytes;
        self.apply_retention();
    }

    /// Bounded-memory eviction: with `retain_epochs = Some(k)`, every epoch
    /// at least `k` behind the durable frontier is dropped from RAM
    /// (elements only — digests and proofs stay resident, so epoch-proof
    /// serving and consistency checks are unaffected). Evicted contents are
    /// read back from the store on demand by [`Self::fetch_epoch_elements`]
    /// and covered by the [`Self::stamped_in_store`] membership fallback.
    fn apply_retention(&mut self) {
        let Some(retain) = self.config.store.as_ref().and_then(|s| s.retain_epochs) else {
            return;
        };
        let horizon = self.persisted.saturating_sub(retain);
        while self.state.evicted_epochs() < horizon {
            let epoch = self.state.evicted_epochs() + 1;
            self.stats.elements_evicted += self.state.evict_epoch(epoch) as u64;
        }
    }

    /// True when `id` was stamped into an epoch that has since been evicted
    /// from RAM: the store's element index is the authority for the evicted
    /// prefix. Resident ids short-circuit before reaching here, and eviction
    /// only removes durably stored epochs, so adding this fallback to a
    /// membership check changes no verdict relative to an eviction-free run.
    fn stamped_in_store(&self, id: ElementId) -> bool {
        self.state.evicted_epochs() > 0
            && self
                .store
                .as_ref()
                .is_some_and(|s| s.epoch_of(id.0).is_some())
    }

    /// The elements of `epoch`, from RAM when resident, read back from the
    /// store when evicted. `None` for epochs this server does not hold.
    fn fetch_epoch_elements(&self, epoch: u64) -> Option<Vec<Element>> {
        if let Some(elements) = self.state.epoch_elements(epoch) {
            return Some(elements.to_vec());
        }
        if epoch == 0 || epoch > self.state.evicted_epochs() {
            return None;
        }
        let store = self.store.as_ref().expect("evicted epochs imply a store");
        let record = store
            .load_epoch(epoch)
            .unwrap_or_else(|e| panic!("setchain-store: cannot read epoch {epoch}: {e}"))
            .expect("evicted epochs are on the store");
        Some(Self::unpack_elements(&record.elements))
    }

    /// Packs elements for a store record: `PACKED_LEN` bytes each, in epoch
    /// order (the layout [`Element::unpack`] inverts).
    fn pack_elements(elements: &[Element]) -> Vec<u8> {
        let mut out = Vec::with_capacity(elements.len() * Element::PACKED_LEN);
        for e in elements {
            out.extend_from_slice(&e.pack());
        }
        out
    }

    /// Inverse of [`Self::pack_elements`].
    fn unpack_elements(bytes: &[u8]) -> Vec<Element> {
        bytes
            .chunks_exact(Element::PACKED_LEN)
            .map(|chunk| Element::unpack(chunk.try_into().expect("exact chunks")))
            .collect()
    }

    /// Packs epoch-proofs for a store record: `PROOF_LEN` (80) bytes each —
    /// epoch (8 LE) ‖ signer (8 LE) ‖ MAC (64).
    fn pack_proofs(proofs: &[EpochProof]) -> Vec<u8> {
        let mut out = Vec::with_capacity(proofs.len() * setchain_store::PROOF_LEN);
        for p in proofs {
            out.extend_from_slice(&p.epoch.to_le_bytes());
            out.extend_from_slice(&p.signer.0.to_le_bytes());
            out.extend_from_slice(&p.signature.bytes);
        }
        out
    }

    /// Inverse of [`Self::pack_proofs`]. Reconstructing a [`Signature`]
    /// from raw bytes is sound here because only quorum-verified proofs are
    /// ever persisted, and the recovery path replays them without granting
    /// them any authority a fresh proof would not get.
    fn unpack_proofs(bytes: &[u8]) -> Vec<EpochProof> {
        bytes
            .chunks_exact(setchain_store::PROOF_LEN)
            .map(|chunk| {
                let epoch = u64::from_le_bytes(chunk[0..8].try_into().expect("exact chunks"));
                let signer = ProcessId(u64::from_le_bytes(
                    chunk[8..16].try_into().expect("exact chunks"),
                ));
                let mut mac = [0u8; 64];
                mac.copy_from_slice(&chunk[16..80]);
                EpochProof {
                    epoch,
                    signer,
                    signature: Signature { signer, bytes: mac },
                }
            })
            .collect()
    }

    /// Read access to the first admission shard's cache (hit/miss counters
    /// for reports). With one shard — the default — this is the whole
    /// admission state; sharded servers expose every cache through
    /// [`Self::admission_caches`].
    pub fn admission_cache(&self) -> &AdmissionCache {
        &self.admission[0]
    }

    /// Read access to every admission shard's cache, ring-ordered.
    pub fn admission_caches(&self) -> &[AdmissionCache] {
        &self.admission
    }

    /// The consistent-hash ring routing element ids to admission shards.
    pub fn shard_ring(&self) -> &ShardRing {
        &self.ring
    }

    /// Per-shard counters: each admission shard's cache size and hit/miss
    /// totals plus its `the_set` partition length. The rollup across
    /// entries covers the whole server (see [`ShardStats`]).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.admission
            .iter()
            .enumerate()
            .map(|(shard, cache)| ShardStats {
                shard,
                cached_verdicts: cache.len() as u64,
                admission_hits: cache.hits(),
                admission_misses: cache.misses(),
                set_len: self.state.shard_set_len(shard) as u64,
            })
            .collect()
    }

    /// This server's process id.
    pub fn id(&self) -> ProcessId {
        self.keys.id
    }

    /// Resolves (and caches) the HMAC key schedule for a registered
    /// non-server client. Unknown or server ids are never cached, so a
    /// client registered later is still picked up.
    fn client_key(&mut self, client: ProcessId) -> Option<&HmacSha256Key> {
        if !self.client_keys.contains_key(&client) {
            let pair = self.registry.lookup(client)?;
            if pair.id.is_server() {
                return None;
            }
            self.client_keys
                .insert(client, HmacSha256Key::new(&pair.secret.0));
        }
        self.client_keys.get(&client)
    }

    /// Validates one element, memoized: semantically identical to
    /// `element.is_valid(&self.registry)` but the authenticator digest is
    /// computed at most once per element per server, and the per-client HMAC
    /// key schedule is shared across elements.
    pub fn element_valid(&mut self, element: &Element) -> bool {
        let shard = self.ring.shard_of(element.id);
        if let Some(verdict) = self.admission[shard].lookup(element) {
            return verdict;
        }
        let key = self.client_key(element.client);
        let (verdict, cacheable) = Self::verdict_with_key(element, key);
        if cacheable {
            self.admission[shard].record(element, verdict);
        }
        verdict
    }

    /// The one verdict rule shared by the single-element and batched paths:
    /// `key` is the claimed client's resolved schedule (`None` for unknown
    /// clients and server-claimed elements). The second value says whether
    /// the verdict is stable enough to memoize: verdicts backed by a key
    /// schedule or by an intrinsic property (degenerate size, server-claimed)
    /// are; a `false` that merely reflects the client being absent from the
    /// registry is not — the client may register later, and `is_valid` would
    /// then change its answer.
    fn verdict_with_key(element: &Element, key: Option<&HmacSha256Key>) -> (bool, bool) {
        if !element.size_in_bounds() || element.client.is_server() {
            return (false, true);
        }
        match key {
            Some(key) => (element.auth_matches(key), true),
            None => (false, false),
        }
    }

    /// Validates a batch of elements, returning one verdict per element in
    /// order — the batched core of server-side validation. Memoized verdicts
    /// are served from the per-shard caches; the misses are checked through
    /// `parallel_map` with per-client precomputed HMAC key schedules. With
    /// one shard (the default) the misses fan out element-wise, sequential
    /// below `MIN_PARALLEL_LEN` — the exact pre-sharding pipeline. With
    /// more, they group by ring shard and the *shard groups* fan out, each
    /// shard's lane running sequentially into its own cache
    /// (`validate_misses_sharded`).
    pub fn validate_elements(&mut self, elements: &[Element]) -> Vec<bool> {
        let mut verdicts = vec![false; elements.len()];
        let mut misses = std::mem::take(&mut self.miss_scratch);
        debug_assert!(misses.is_empty());
        for (i, e) in elements.iter().enumerate() {
            match self.admission[self.ring.shard_of(e.id)].lookup(e) {
                Some(verdict) => verdicts[i] = verdict,
                None => misses.push(i),
            }
        }
        if misses.is_empty() {
            self.miss_scratch = misses;
            return verdicts;
        }
        // Warm the per-client key schedules single-threaded (the distinct
        // client set is tiny next to the batch), then fan the authenticator
        // checks out over the batch.
        for &i in &misses {
            let _ = self.client_key(elements[i].client);
        }
        if self.ring.shards() > 1 {
            self.validate_misses_sharded(elements, &misses, &mut verdicts);
            misses.clear();
            self.miss_scratch = misses;
            return verdicts;
        }
        let mut pending = std::mem::take(&mut self.pending_scratch);
        debug_assert!(pending.is_empty());
        pending.extend(misses.iter().map(|&i| elements[i]));
        let keys = &self.client_keys;
        // A key-schedule miss after the warm-up above means the client is
        // unknown (or server-claimed); `verdict_with_key` applies the same
        // rule as the single-element path.
        let checked = parallel_map(&pending, self.threads, |e| {
            Self::verdict_with_key(e, keys.get(&e.client))
        });
        // Pre-size the cache from the observed batch cardinality so the
        // bulk insertions below do not rehash the table mid-batch.
        self.admission[0].reserve(misses.len());
        for (&i, (e, (verdict, cacheable))) in misses.iter().zip(pending.iter().zip(checked)) {
            verdicts[i] = verdict;
            if cacheable {
                self.admission[0].record(e, verdict);
            }
        }
        misses.clear();
        pending.clear();
        self.miss_scratch = misses;
        self.pending_scratch = pending;
        verdicts
    }

    /// The sharded miss path of [`Self::validate_elements`]: cache misses
    /// group by ring shard and the shard groups fan out through
    /// `parallel_map_min` — one lane per shard, each lane checking its
    /// elements sequentially and recording into its own cache afterwards.
    /// `verdict_with_key` is pure, so the verdicts are position-identical
    /// to the unsharded path for any grouping.
    fn validate_misses_sharded(
        &mut self,
        elements: &[Element],
        misses: &[usize],
        verdicts: &mut [bool],
    ) {
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.ring.shards()];
        for &i in misses {
            groups[self.ring.shard_of(elements[i].id)].push(i);
        }
        let keys = &self.client_keys;
        // Shard counts are far below MIN_PARALLEL_LEN, so the fan-out uses
        // an explicit threshold of 2 groups instead of the element-wise
        // default.
        let checked: Vec<Vec<(usize, bool, bool)>> =
            parallel_map_min(&groups, self.threads, 2, |group| {
                group
                    .iter()
                    .map(|&i| {
                        let e = &elements[i];
                        let (verdict, cacheable) = Self::verdict_with_key(e, keys.get(&e.client));
                        (i, verdict, cacheable)
                    })
                    .collect()
            });
        for (shard, lane) in checked.iter().enumerate() {
            self.admission[shard].reserve(lane.len());
            for &(i, verdict, cacheable) in lane {
                verdicts[i] = verdict;
                if cacheable {
                    self.admission[shard].record(&elements[i], verdict);
                }
            }
        }
    }

    /// Overload gate for client-facing submissions, called by every variant
    /// *before* any authenticator or batch-root verification: with a quota
    /// configured, probes `from`'s token bucket and pending cap for
    /// `elements` more elements. On a shed the whole submission is refused
    /// with zero validation CPU spent, the drop is attributed to
    /// [`adds_rejected_quota`](ServerStats::adds_rejected_quota), and the
    /// sender is told to back off via [`SetchainMsg::Rejected`].
    ///
    /// Messages from peer servers are never quota-checked: gossip and
    /// recovery traffic is committed-path and must not be shed. With no
    /// quota configured this returns `true` without touching the context —
    /// the exact pre-quota schedule.
    pub fn admit_source(
        &mut self,
        from: ProcessId,
        elements: u64,
        ctx: &mut Ctx<'_, '_, '_>,
    ) -> bool {
        let Some(quota) = self.quota.as_mut() else {
            return true;
        };
        if from.is_server() {
            return true;
        }
        match quota.admit(from, elements, ctx.now()) {
            crate::quota::QuotaVerdict::Admit => true,
            crate::quota::QuotaVerdict::Shed { retry_after } => {
                self.stats.adds_rejected_quota += elements;
                ctx.send_app(from, SetchainMsg::Rejected { retry_after });
                false
            }
        }
    }

    /// Read access to the quota state (shed counters and per-client pending
    /// levels for reports); `None` when admission is unmetered.
    pub fn quota(&self) -> Option<&crate::quota::QuotaState> {
        self.quota.as_ref()
    }

    /// Releases pending-cap capacity for elements just stamped into an
    /// epoch (no-op without a quota). Over-release for elements that were
    /// never counted — gossip arrivals stamped here, or elements admitted
    /// before a restart — saturates at zero per client, so mixed routing
    /// can transiently under-count pending but never wedge a client.
    fn quota_note_stamped(&mut self, elements: &[Element]) {
        if let Some(quota) = self.quota.as_mut() {
            for e in elements {
                quota.note_stamped(e.client, 1);
            }
        }
    }

    /// The paper's `add(e)` precondition: `valid_element(e) ∧ e ∉ the_set`.
    /// On success the element is inserted into `the_set` and `true` is
    /// returned; the caller routes it (ledger append or collector).
    pub fn accept_add(&mut self, element: &Element, ctx: &mut Ctx<'_, '_, '_>) -> bool {
        if self.byz == ServerByzMode::DropClientAdds {
            self.stats.adds_rejected_invalid += 1;
            return false;
        }
        ctx.consume_cpu(self.config.costs.validate_element);
        if !self.element_valid(element) {
            self.stats.adds_rejected_invalid += 1;
            return false;
        }
        if self.state.contains(&element.id) || self.stamped_in_store(element.id) {
            self.stats.adds_rejected_duplicate += 1;
            return false;
        }
        self.state.insert(element.id);
        self.stats.adds_accepted += 1;
        if let Some(quota) = self.quota.as_mut() {
            quota.note_admitted(element.client, 1);
        }
        true
    }

    /// Probes/verifies a sealed batch, ctx-free so the verdict rule can be
    /// tested without a simulator. Returns `(verdict, fresh)`: `fresh` is
    /// true when the root MAC was actually checked (and the caller must
    /// charge simulated hashing CPU), false when the verdict came from the
    /// root cache with zero hashing.
    ///
    /// On a fresh *accept* the per-element admission cache is warmed with a
    /// `true` verdict for every member: under [`crate::AuthMode::BatchRoot`]
    /// the owner's root MAC is the authentication, and per-element validity
    /// follows from Merkle membership — so the later `accept_add` /
    /// recovery-path probes for these elements hit without ever computing a
    /// per-element HMAC. (For honestly generated elements this coincides
    /// with the per-element authenticator verdict; a key-holding client
    /// vouching for its *own* elements is exactly what the MAC attests.)
    ///
    /// Verdicts for batches claiming an unregistered client are not cached,
    /// mirroring [`Self::element_valid`]: the client may register later.
    fn batch_verdict(&mut self, batch: &AuthedBatch) -> (bool, bool) {
        // Root verdicts are not per-element, so they live on the first
        // shard's cache regardless of the ring; the per-element warm-up
        // below routes each member to its own shard.
        if let Some(verdict) = self.admission[0].lookup_root(batch) {
            return (verdict, false);
        }
        let (verdict, cacheable) = if batch.client.is_server() || batch.elements.is_empty() {
            (false, true)
        } else {
            match self.client_key(batch.client) {
                Some(key) => (batch.verify(key), true),
                None => (false, false),
            }
        };
        if cacheable {
            self.admission[0].record_root(batch, verdict);
            if verdict {
                if self.ring.shards() == 1 {
                    self.admission[0].reserve(batch.elements.len());
                }
                for e in &batch.elements {
                    self.admission[self.ring.shard_of(e.id)].record(e, true);
                }
            }
        }
        if verdict {
            self.stats.batch_roots_verified += 1;
        } else {
            self.stats.batch_roots_rejected += 1;
        }
        (verdict, true)
    }

    /// Verifies a [`SetchainMsg::BatchedAdd`] envelope: one root-cache
    /// probe, and on a miss one Merkle-root recomputation plus one MAC check
    /// for the whole batch — the batch-authenticated replacement for
    /// per-element authenticator checks. Simulated CPU is charged only for
    /// fresh verifications (hashing the packed element identities into the
    /// chunked root, plus one MAC); re-gossiped batches verify for free.
    pub fn verify_batched_add(&mut self, batch: &AuthedBatch, ctx: &mut Ctx<'_, '_, '_>) -> bool {
        let (verdict, fresh) = self.batch_verdict(batch);
        if fresh {
            ctx.consume_cpu(
                self.config
                    .costs
                    .hash_cost(batch.elements.len() * Element::PACKED_LEN),
            );
            ctx.consume_cpu(self.config.costs.validate_element);
        }
        verdict
    }

    /// Forwards a client's sealed batch to every peer server, so each peer
    /// verifies the root once (or serves it from its root cache) and warms
    /// its per-element admission cache *before* the batch contents come back
    /// around through collector batches, blocks or hash reversal — the
    /// whole deployment then authenticates each batch at most once per
    /// server, with zero per-element MACs.
    pub fn gossip_batched_add(&self, batch: &AuthedBatch, ctx: &mut Ctx<'_, '_, '_>) {
        let me = self.keys.id;
        let peers = (0..self.config.servers)
            .map(ProcessId::server)
            .filter(|p| *p != me);
        ctx.broadcast_app(peers, SetchainMsg::BatchedAdd(batch.clone()));
    }

    /// Handles `get` and `get_epoch` requests from clients.
    pub fn handle_get(
        &mut self,
        from: ProcessId,
        msg: &SetchainMsg,
        ctx: &mut Ctx<'_, '_, '_>,
    ) -> bool {
        match msg {
            SetchainMsg::Get { request_id } => {
                self.stats.gets_served += 1;
                let snapshot = self.state.snapshot(self.config.proof_quorum());
                ctx.send_app(
                    from,
                    SetchainMsg::GetResponse {
                        request_id: *request_id,
                        snapshot,
                    },
                );
                true
            }
            SetchainMsg::GetEpoch { request_id, epoch } => {
                self.stats.gets_served += 1;
                let elements = self.fetch_epoch_elements(*epoch).unwrap_or_default();
                let proofs = self.state.proofs_for(*epoch).to_vec();
                ctx.send_app(
                    from,
                    SetchainMsg::EpochResponse {
                        request_id: *request_id,
                        epoch: *epoch,
                        elements,
                        proofs,
                    },
                );
                true
            }
            SetchainMsg::CatchupRequest { from_epoch } => {
                self.serve_catchup(from, *from_epoch, ctx);
                true
            }
            SetchainMsg::CatchupResponse { epochs } => {
                self.handle_catchup_response(from, epochs, ctx);
                true
            }
            _ => false,
        }
    }

    /// Answers a [`SetchainMsg::CatchupRequest`]: ships the *committed
    /// prefix* only — consecutive epochs from `from_epoch` for which this
    /// server already holds a full `f + 1` proof quorum — bounded at
    /// [`MAX_CATCHUP_EPOCHS`] per response. A peer that is not ahead (or
    /// whose newest epochs have not gathered their quorum yet) sends
    /// nothing, so the restart probe is free in the common case.
    fn serve_catchup(&mut self, from: ProcessId, from_epoch: u64, ctx: &mut Ctx<'_, '_, '_>) {
        let quorum = self.config.proof_quorum();
        let mut epochs = Vec::new();
        let mut e = from_epoch.max(1);
        while e <= self.state.epoch()
            && epochs.len() < MAX_CATCHUP_EPOCHS
            && self.state.proof_count(e) >= quorum
        {
            epochs.push(crate::messages::CatchupEpoch {
                epoch: e,
                elements: self.fetch_epoch_elements(e).unwrap_or_default(),
                proofs: self.state.proofs_for(e).to_vec(),
            });
            e += 1;
        }
        if !epochs.is_empty() {
            ctx.send_app(from, SetchainMsg::CatchupResponse { epochs });
        }
    }

    /// Verifies and applies a [`SetchainMsg::CatchupResponse`]. Each bundle
    /// is accepted only if it is the next epoch in sequence and its elements
    /// hash to a digest that `f + 1` distinct valid signers vouch for —
    /// the same `valid_proof` machinery as the normal commit path, so a
    /// Byzantine responder cannot inject or reorder history. Bundles for
    /// epochs already held (duplicate responses to a broadcast probe) are
    /// skipped silently; the first out-of-order or under-proven bundle
    /// stops the scan and counts one rejection.
    fn handle_catchup_response(
        &mut self,
        from: ProcessId,
        epochs: &[crate::messages::CatchupEpoch],
        ctx: &mut Ctx<'_, '_, '_>,
    ) {
        self.catchup_pending = None;
        let mut applied = 0usize;
        for bundle in epochs {
            let next = self.state.epoch() + 1;
            if bundle.epoch < next {
                continue; // already held: duplicate response
            }
            if bundle.epoch > next {
                self.stats.catchup_rejections += 1;
                break;
            }
            // Re-hash the shipped elements and verify the proofs against
            // the recomputed digest — trusting the responder's digest would
            // let it rebind valid signatures to fabricated contents.
            let bytes: usize = bundle.elements.iter().map(|e| e.wire_size()).sum();
            ctx.consume_cpu(self.config.costs.hash_cost(bytes));
            let digest = epoch_hash(bundle.epoch, &bundle.elements);
            let mut valid: Vec<EpochProof> = Vec::new();
            for proof in &bundle.proofs {
                ctx.consume_cpu(self.config.costs.verify_signature);
                if proof.epoch == bundle.epoch
                    && self.proof_valid_digest(proof, &digest)
                    && !valid.iter().any(|p| p.signer == proof.signer)
                {
                    valid.push(*proof);
                }
            }
            if valid.len() < self.config.proof_quorum() {
                self.stats.catchup_rejections += 1;
                break;
            }
            let installed = self
                .state
                .install_epoch(bundle.epoch, bundle.elements.clone());
            debug_assert!(installed, "sequencing checked above");
            self.quota_note_stamped(&bundle.elements);
            // The quorum travels with the bundle, so the epoch lands
            // committed; later ledger-replayed proofs only add signers
            // beyond the quorum (and never re-report the commit).
            for proof in valid {
                self.state.add_proof(proof);
            }
            self.stats.epochs_replayed += 1;
            applied += 1;
        }
        if applied > 0 {
            // Every installed bundle arrived with its quorum: it is
            // committed, so it is durable the moment it lands.
            self.persist_committed();
        }
        // A fully-applied response means the responder may hold more by now
        // (a full page certainly, but even a short page can be stale by the
        // time it arrives): page on. The responder only answers when it is
        // ahead, so this terminates once we reach its committed tip.
        if applied > 0 && applied == epochs.len() {
            let from_epoch = self.state.epoch() + 1;
            self.catchup_pending = Some((from_epoch, ctx.now()));
            self.stats.catchup_requests += 1;
            ctx.send_app(from, SetchainMsg::CatchupRequest { from_epoch });
        }
    }

    /// Restart probe: a server that comes back with retained state asks
    /// every peer for the epochs it may have missed while down. Peers that
    /// are not ahead answer nothing; the first useful response fast-forwards
    /// the state and duplicates de-duplicate on apply. At cold start the
    /// epoch is 0 and this is a no-op, so fault-free schedules are
    /// unchanged. Called from every variant's `on_start`.
    pub fn maybe_request_catchup(&mut self, ctx: &mut Ctx<'_, '_, '_>) {
        if self.state.epoch() == 0 {
            return;
        }
        let from_epoch = self.state.epoch() + 1;
        self.catchup_pending = Some((from_epoch, ctx.now()));
        self.stats.catchup_requests += 1;
        let me = self.keys.id;
        let peers = (0..self.config.servers)
            .map(ProcessId::server)
            .filter(|p| *p != me);
        ctx.broadcast_app(peers, SetchainMsg::CatchupRequest { from_epoch });
    }

    /// Gap detection on first contact: `peer` demonstrably knows about
    /// `epoch`, which is ahead of our state — request the missing range,
    /// unless a request covering it is already outstanding.
    pub fn note_peer_epoch(&mut self, peer: ProcessId, epoch: u64, ctx: &mut Ctx<'_, '_, '_>) {
        if epoch <= self.state.epoch() || peer == self.keys.id || !peer.is_server() {
            return;
        }
        let from_epoch = self.state.epoch() + 1;
        if self.catchup_suppressed(from_epoch, ctx.now()) {
            return;
        }
        self.catchup_pending = Some((from_epoch, ctx.now()));
        self.stats.catchup_requests += 1;
        ctx.send_app(peer, SetchainMsg::CatchupRequest { from_epoch });
    }

    /// The catch-up rate limiter: whether an outstanding request suppresses
    /// a new one covering `from_epoch` at `now`. Suppression *expires* after
    /// [`CATCHUP_RETRY`] — a request lost to a partition, crash or total
    /// loss must not wedge the server behind the tip forever — and a gap
    /// signal for a range past the outstanding request's start is never
    /// suppressed.
    fn catchup_suppressed(&self, from_epoch: u64, now: SimTime) -> bool {
        matches!(
            self.catchup_pending,
            Some((p, at)) if p >= from_epoch && now.since(at) < CATCHUP_RETRY
        )
    }

    /// Validates and records an epoch-proof extracted from the ledger
    /// (the paper's `valid_proof(j, p, w, history[j])` filter). When the
    /// proof count for the epoch reaches `f + 1`, the commit is reported to
    /// the experiment trace.
    pub fn ingest_proof(&mut self, proof: EpochProof, now: SimTime, ctx: &mut Ctx<'_, '_, '_>) {
        ctx.consume_cpu(self.config.costs.verify_signature);
        // The digest of every recorded epoch is cached at creation time, so
        // verifying the up-to-n proofs of an epoch re-hashes nothing.
        let Some(digest) = self.state.epoch_digest(proof.epoch).copied() else {
            self.stats.proofs_rejected += 1;
            if proof.epoch > self.state.epoch() {
                // A proof for an epoch we have not derived yet: the signer
                // is ahead of us — catch up from it.
                self.note_peer_epoch(proof.signer, proof.epoch, ctx);
            }
            return;
        };
        if !self.proof_valid_digest(&proof, &digest) {
            self.stats.proofs_rejected += 1;
            return;
        }
        self.stats.proofs_received += 1;
        let count = self.state.add_proof(proof);
        if count == self.config.proof_quorum() {
            self.trace.record_epoch_commit(proof.epoch, now);
            self.persist_committed();
        }
    }

    /// Creates a new epoch from `elements` (which must already be filtered to
    /// valid, not-yet-stamped elements), records it in the trace, and returns
    /// the epoch number together with this server's epoch-proof for it.
    pub fn create_epoch(
        &mut self,
        elements: Vec<Element>,
        now: SimTime,
        ctx: &mut Ctx<'_, '_, '_>,
    ) -> (u64, EpochProof) {
        self.derived_epochs += 1;
        if self.derived_epochs <= self.state.epoch() {
            // Catch-up already installed this epoch (verified against f+1
            // epoch-proofs); the ledger replay is now re-deriving it, and
            // recording it again would double-stamp its elements. Sign the
            // stored digest instead, so peers still receive this server's
            // proof for the epoch.
            let epoch = self.derived_epochs;
            ctx.consume_cpu(self.config.costs.sign);
            let digest = self
                .state
                .epoch_digest(epoch)
                .expect("epoch installed by catch-up");
            let mut proof = make_epoch_proof_with_key(&self.own_key, self.keys.id, epoch, digest);
            if self.byz == ServerByzMode::ForgeProofs {
                proof.signature = Signature::forged(self.keys.id);
            }
            return (epoch, proof);
        }
        let epoch = self.state.record_epoch(elements);
        debug_assert_eq!(
            epoch, self.derived_epochs,
            "ledger-derived epochs are sequential"
        );
        self.stats.epochs_created += 1;
        let stamped = self.state.epoch_elements(epoch).expect("just created");
        self.trace
            .record_epoch_assignments(stamped.iter().map(|e| e.id), epoch, now);
        if let Some(quota) = self.quota.as_mut() {
            for e in stamped {
                quota.note_stamped(e.client, 1);
            }
        }
        // Hash + sign cost for the epoch-proof.
        let bytes: usize = stamped.iter().map(|e| e.wire_size()).sum();
        ctx.consume_cpu(self.config.costs.hash_cost(bytes));
        ctx.consume_cpu(self.config.costs.sign);
        // Sign over the digest `record_epoch` just cached — the one place
        // the epoch's elements are actually hashed. The server's own key
        // schedule is precomputed, so the signature costs two compressions.
        let digest = self.state.epoch_digest(epoch).expect("just created");
        let mut proof = make_epoch_proof_with_key(&self.own_key, self.keys.id, epoch, digest);
        if self.byz == ServerByzMode::ForgeProofs {
            proof.signature = Signature::forged(self.keys.id);
        }
        (epoch, proof)
    }

    /// First-pass admission of a recovered batch's elements: validates
    /// them (batched, memoized — the same [`Self::validate_elements`] core
    /// the epoch path uses) and inserts the valid, not-yet-stamped ids into
    /// `the_set`, without materializing a candidate vector. The epoch
    /// itself is built later, at consolidation, through
    /// [`Self::extract_epoch_candidates`]; this is the "valid elements join
    /// `the_set` immediately" half of batch processing.
    pub fn admit_batch_elements(
        &mut self,
        elements: &[Element],
        validate: bool,
        ctx: &mut Ctx<'_, '_, '_>,
    ) {
        if !validate {
            for e in elements {
                if !self.state.in_history(&e.id) && !self.stamped_in_store(e.id) {
                    self.state.insert(e.id);
                }
            }
            return;
        }
        ctx.consume_cpu(self.config.costs.validate_cost(elements.len()));
        let verdicts = self.validate_elements(elements);
        // Rejections are counted once per distinct id, matching the
        // pre-validation dedup of the epoch path — a Byzantine batch
        // repeating one forged element must not inflate the counter. The
        // set is only materialized when a rejection actually occurs, so
        // honest batches stay allocation-free.
        let mut rejected_ids: Option<FxHashSet<ElementId>> = None;
        for (e, ok) in elements.iter().zip(verdicts) {
            if self.state.in_history(&e.id) || self.stamped_in_store(e.id) {
                continue;
            }
            if ok {
                self.state.insert(e.id);
            } else if rejected_ids
                .get_or_insert_with(FxHashSet::default)
                .insert(e.id)
            {
                self.stats.elements_rejected += 1;
            }
        }
    }

    /// The paper's `valid_proof` signer/signature checks against an
    /// already-computed digest, through the per-signer schedule cache:
    /// semantically [`crate::verify_epoch_proof`] with the epoch hash
    /// replaced by `digest`.
    pub fn proof_valid_digest(&mut self, proof: &EpochProof, digest: &Digest512) -> bool {
        proof.signature.signer == proof.signer
            && proof.signer.is_server()
            && proof.signer.server_index() < self.config.servers
            && self
                .verifier
                .verify(&self.registry, digest.as_bytes(), &proof.signature)
    }

    /// The paper's `valid_hash(h, s, w)` through the per-signer schedule
    /// cache: same verdict as [`HashBatch::is_valid`], without rebuilding
    /// the signer's HMAC key pads per hash-batch.
    pub fn hash_batch_valid(&mut self, hb: &HashBatch) -> bool {
        hb.signer.is_server()
            && hb.signer.server_index() < self.config.servers
            && hb.signature.signer == hb.signer
            && self
                .verifier
                .verify(&self.registry, hb.hash.as_bytes(), &hb.signature)
    }

    /// Signs a hash-batch with this server's precomputed key schedule.
    pub fn make_hash_batch(&self, hash: Digest512) -> HashBatch {
        HashBatch {
            hash,
            signer: self.keys.id,
            signature: sign_with(&self.own_key, self.keys.id, hash.as_bytes()),
        }
    }

    /// Filters the elements of a batch/block down to the set `G` that forms a
    /// new epoch: valid elements (unless `validate` is false, for the light
    /// ablations) that are not yet in `history`, de-duplicated.
    ///
    /// Validation of the deduplicated candidates goes through
    /// [`validate_elements`](Self::validate_elements): batched, parallel
    /// above the `MIN_PARALLEL_LEN` threshold, memoized per element.
    pub fn extract_epoch_candidates(
        &mut self,
        elements: &[Element],
        validate: bool,
        ctx: &mut Ctx<'_, '_, '_>,
    ) -> Vec<Element> {
        if validate {
            ctx.consume_cpu(self.config.costs.validate_cost(elements.len()));
        }
        let mut seen = FxHashSet::default();
        let mut candidates = Vec::new();
        for e in elements {
            if self.state.in_history(&e.id) || self.stamped_in_store(e.id) || !seen.insert(e.id) {
                continue;
            }
            candidates.push(*e);
        }
        if !validate {
            return candidates;
        }
        let verdicts = self.validate_elements(&candidates);
        let mut out = Vec::with_capacity(candidates.len());
        for (e, ok) in candidates.into_iter().zip(verdicts) {
            if ok {
                out.push(e);
            } else {
                self.stats.elements_rejected += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementId;
    use crate::proofs::make_epoch_proof_for_digest;

    fn core_with(seed: u64, servers: usize, clients: usize) -> (ServerCore, KeyRegistry) {
        core_with_shards(seed, servers, clients, 1)
    }

    fn core_with_shards(
        seed: u64,
        servers: usize,
        clients: usize,
        shards: usize,
    ) -> (ServerCore, KeyRegistry) {
        let registry = KeyRegistry::bootstrap(seed, servers, clients);
        let keys = registry.lookup(ProcessId::server(0)).unwrap();
        let core = ServerCore::new(
            keys,
            registry.clone(),
            SetchainConfig::new(servers).with_shards(shards),
            SetchainTrace::new(),
            ServerByzMode::Correct,
        );
        (core, registry)
    }

    /// Builds an element from a compact spec: `(client index, sequence,
    /// size, kind)` where kind 0 = valid, 1 = forged authenticator,
    /// 2 = tampered size, 3 = signed with a server key, 4 = signed with a
    /// *different* client's key (a Byzantine client impersonation), and the
    /// client index may point outside the registered set.
    fn element_from_spec(
        registry: &KeyRegistry,
        clients: usize,
        spec: (usize, u64, u32, u8),
    ) -> Element {
        let (client_idx, seq, size, kind) = spec;
        let client = ProcessId::client(client_idx);
        let id = ElementId::new(client_idx as u32, seq);
        match kind {
            1 => Element::forged(client, id, size),
            2 => {
                let keys = registry
                    .lookup(ProcessId::client(client_idx % clients))
                    .unwrap();
                let mut e = Element::new(&keys, id, size.max(1), seq);
                e.size = e.size.wrapping_add(7);
                e.client = client;
                e
            }
            3 => {
                let keys = registry.lookup(ProcessId::server(0)).unwrap();
                let mut e = Element::new(&keys, id, size, seq);
                // Keep the server as the claimed signer.
                e.client = ProcessId::server(0);
                e
            }
            4 => {
                let other = registry
                    .lookup(ProcessId::client((client_idx + 1) % clients))
                    .unwrap();
                let mut e = Element::new(&other, id, size, seq);
                e.client = client; // claims a client whose key did not sign
                e
            }
            _ => match registry.lookup(client) {
                Some(keys) => Element::new(&keys, id, size, seq),
                None => Element::forged(client, id, size),
            },
        }
    }

    /// Unique temp directory for store-backed cores, removed on drop.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(label: &str) -> Self {
            use std::sync::atomic::{AtomicU64, Ordering};
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "setchain-server-{label}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn store_core(seed: u64, cfg: StoreConfig) -> (ServerCore, KeyRegistry) {
        let registry = KeyRegistry::bootstrap(seed, 4, 3);
        let keys = registry.lookup(ProcessId::server(0)).unwrap();
        let core = ServerCore::new(
            keys,
            registry.clone(),
            SetchainConfig::new(4).with_store(cfg),
            SetchainTrace::new(),
            ServerByzMode::Correct,
        );
        (core, registry)
    }

    /// Records `epochs` committed epochs on `core`: each epoch gets
    /// `quorum` distinct valid signers and is flushed to the store.
    fn commit_epochs(core: &mut ServerCore, registry: &KeyRegistry, epochs: u64) {
        let client = registry.lookup(ProcessId::client(0)).unwrap();
        for e in 1..=epochs {
            let elements: Vec<Element> = (0..4)
                .map(|i| Element::new(&client, ElementId::new(0, e * 10 + i), 100 + i as u32, i))
                .collect();
            assert_eq!(core.state.record_epoch(elements), e);
            let digest = *core.state.epoch_digest(e).unwrap();
            for s in 0..core.config.proof_quorum() {
                let signer = registry.lookup(ProcessId::server(s)).unwrap();
                core.state
                    .add_proof(make_epoch_proof_for_digest(&signer, e, &digest));
            }
            core.persist_committed();
        }
    }

    #[test]
    fn catchup_limiter_expires_after_retry_window() {
        // Regression test for the PR 7 catch-up rate limiter: an
        // outstanding request suppresses duplicates only within
        // `CATCHUP_RETRY`. A request lost to 100% loss on the catch-up leg
        // must stop suppressing once the window elapses, or the server
        // wedges behind the tip forever.
        let (mut core, _registry) = core_with(91, 4, 2);
        let sent_at = SimTime::from_secs(5);
        core.catchup_pending = Some((3, sent_at));

        // Within the window: same or earlier range suppressed, a range
        // starting past the outstanding request never is.
        let within = sent_at + SimDuration(CATCHUP_RETRY.0 - 1);
        assert!(core.catchup_suppressed(3, within));
        assert!(core.catchup_suppressed(2, within));
        assert!(!core.catchup_suppressed(4, within));

        // At exactly the window boundary the entry is presumed lost and a
        // re-request is allowed again.
        let expired = sent_at + CATCHUP_RETRY;
        assert!(!core.catchup_suppressed(3, expired));
        assert!(!core.catchup_suppressed(2, expired));

        // No outstanding request: never suppressed.
        core.catchup_pending = None;
        assert!(!core.catchup_suppressed(1, within));
    }

    #[test]
    fn store_persists_commits_and_recovers_on_reopen() {
        let tmp = TempDir::new("reopen");
        let cfg = StoreConfig::new(tmp.0.to_str().unwrap());
        let (mut core, registry) = store_core(83, cfg.clone());
        commit_epochs(&mut core, &registry, 5);
        assert_eq!(core.stats.epochs_persisted, 5);
        assert!(core.stats.store_bytes > 0);
        assert_eq!(core.stats.elements_evicted, 0);
        let digests: Vec<_> = (1..=5)
            .map(|e| *core.state.epoch_digest(e).unwrap())
            .collect();
        let elements: Vec<_> = (1..=5)
            .map(|e| core.state.epoch_elements(e).unwrap().to_vec())
            .collect();
        drop(core);

        // Reopen: the replayed state matches epoch-for-epoch, every epoch
        // is already committed (quorum replayed from the store), and
        // nothing needs re-persisting.
        let (mut reopened, _) = store_core(83, cfg);
        assert_eq!(reopened.state.epoch(), 5);
        assert_eq!(reopened.persisted, 5);
        assert_eq!(
            reopened.stats.epochs_persisted, 0,
            "recovered, not re-appended"
        );
        for e in 1..=5u64 {
            assert_eq!(
                reopened.state.epoch_digest(e).unwrap(),
                &digests[e as usize - 1]
            );
            assert_eq!(
                reopened.state.epoch_elements(e).unwrap(),
                &elements[e as usize - 1][..]
            );
            assert!(reopened.state.proof_count(e) >= reopened.config.proof_quorum());
        }
        // The durable frontier is exact: persist_committed is a no-op.
        reopened.persist_committed();
        assert_eq!(reopened.stats.epochs_persisted, 0);
    }

    #[test]
    fn eviction_drops_ram_but_keeps_membership_and_readback() {
        let tmp = TempDir::new("evict");
        let cfg = StoreConfig::new(tmp.0.to_str().unwrap()).with_retain_epochs(1);
        let (mut core, registry) = store_core(89, cfg);
        commit_epochs(&mut core, &registry, 4);
        // retain_epochs = 1: epochs 1..=3 evicted, epoch 4 resident.
        assert_eq!(core.state.evicted_epochs(), 3);
        assert_eq!(core.stats.elements_evicted, 12);
        assert!(core.state.epoch_elements(1).is_none(), "evicted from RAM");
        // Membership of evicted elements survives through the store index.
        let evicted_id = ElementId::new(0, 10); // epoch 1, element 0
        assert!(!core.state.in_history(&evicted_id));
        assert!(core.stamped_in_store(evicted_id));
        assert!(!core.stamped_in_store(ElementId::new(0, 9999)));
        // Evicted epochs read back from the store byte-identically.
        let read_back = core.fetch_epoch_elements(1).unwrap();
        assert_eq!(read_back.len(), 4);
        assert_eq!(
            crate::proofs::epoch_hash(1, &read_back),
            *core.state.epoch_digest(1).unwrap()
        );
        // Logical sizes still count the evicted prefix.
        assert_eq!(core.state.the_set_len(), 16);
        assert_eq!(core.state.history_elements(), 16);
    }

    #[test]
    fn packed_proofs_roundtrip() {
        let registry = KeyRegistry::bootstrap(97, 4, 1);
        let keys = registry.lookup(ProcessId::server(2)).unwrap();
        let digest = epoch_hash(7, &[]);
        let proofs = vec![make_epoch_proof_for_digest(&keys, 7, &digest)];
        let packed = ServerCore::pack_proofs(&proofs);
        assert_eq!(packed.len(), setchain_store::PROOF_LEN);
        let unpacked = ServerCore::unpack_proofs(&packed);
        assert_eq!(unpacked.len(), 1);
        assert_eq!(unpacked[0].epoch, 7);
        assert_eq!(unpacked[0].signer, keys.id);
        assert_eq!(unpacked[0].signature.bytes, proofs[0].signature.bytes);
        assert_eq!(unpacked[0].signature.signer, keys.id);
    }

    #[test]
    fn batched_validation_matches_sequential_above_parallel_threshold() {
        let clients = 5usize;
        let (mut core, registry) = core_with(17, 4, clients);
        core.threads = 4; // force the parallel path even on a 1-core host
        let n = setchain_crypto::MIN_PARALLEL_LEN + 64;
        let elements: Vec<Element> = (0..n)
            .map(|i| {
                element_from_spec(
                    &registry,
                    clients,
                    (
                        i % (clients + 2),
                        i as u64,
                        100 + (i % 900) as u32,
                        (i % 5) as u8,
                    ),
                )
            })
            .collect();
        let sequential: Vec<bool> = elements.iter().map(|e| e.is_valid(&registry)).collect();
        let batched = core.validate_elements(&elements);
        assert_eq!(batched, sequential);
        assert!(sequential.iter().any(|v| *v), "some valid elements");
        assert!(sequential.iter().any(|v| !*v), "some invalid elements");
        // Second pass is served from the memo and must agree.
        assert_eq!(core.validate_elements(&elements), sequential);
    }

    #[test]
    fn late_client_registration_is_picked_up() {
        let (mut core, registry) = core_with(31, 2, 1);
        let late = KeyPair::derive(ProcessId::client(5), 777);
        let e = Element::new(&late, ElementId::new(5, 1), 300, 1);
        // Unknown client: invalid through every path, and not memoized.
        assert!(!core.element_valid(&e));
        assert_eq!(core.validate_elements(&[e]), vec![false]);
        // Once the client registers, the same element validates.
        registry.register(late);
        assert!(core.element_valid(&e));
        assert_eq!(core.validate_elements(&[e]), vec![true]);
    }

    #[test]
    fn memo_does_not_trust_tampered_resends_under_a_known_id() {
        let (mut core, registry) = core_with(23, 4, 2);
        let keys = registry.lookup(ProcessId::client(0)).unwrap();
        let good = Element::new(&keys, ElementId::new(0, 1), 400, 9);
        assert!(core.element_valid(&good));
        // Same id, different contents: the cached verdict must not leak.
        let mut tampered = good;
        tampered.content_seed ^= 0xFF;
        assert!(!core.element_valid(&tampered));
        // And the original still validates afterwards.
        assert!(core.element_valid(&good));
    }

    #[test]
    fn regossip_is_served_from_the_admission_cache() {
        let (mut core, registry) = core_with(41, 4, 3);
        let keys = registry.lookup(ProcessId::client(1)).unwrap();
        let mut batch: Vec<Element> = (0..32)
            .map(|i| Element::new(&keys, ElementId::new(1, i), 300 + i as u32, i))
            .collect();
        // Include rejections in the warm-up: a forged element and a
        // server-claimed one, both cacheable verdicts.
        batch.push(Element::forged(
            ProcessId::client(1),
            ElementId::new(1, 99),
            200,
        ));
        let server_keys = registry.lookup(ProcessId::server(1)).unwrap();
        let mut server_claimed = Element::new(&server_keys, ElementId::new(2, 1), 300, 7);
        server_claimed.client = ProcessId::server(1);
        batch.push(server_claimed);

        let first = core.validate_elements(&batch);
        let misses_after_warmup = core.admission_cache().misses();
        assert_eq!(misses_after_warmup, batch.len() as u64);
        // Re-gossip of the identical batch: every verdict — including the
        // cached rejections — comes from the cache, no new misses.
        let second = core.validate_elements(&batch);
        assert_eq!(first, second);
        assert_eq!(core.admission_cache().misses(), misses_after_warmup);
        assert_eq!(core.admission_cache().hits(), batch.len() as u64);
        assert!(!second[32], "forged element stayed rejected on re-gossip");
        assert!(!second[33], "server-claimed element stayed rejected");
    }

    fn sealed_from(registry: &KeyRegistry, client_idx: usize, n: usize) -> AuthedBatch {
        let keys = registry.lookup(ProcessId::client(client_idx)).unwrap();
        let key = HmacSha256Key::new(&keys.secret.0);
        let elements: Vec<Element> = (0..n)
            .map(|i| {
                Element::new(
                    &keys,
                    ElementId::new(client_idx as u32, i as u64),
                    300 + i as u32,
                    i as u64,
                )
            })
            .collect();
        AuthedBatch::seal(&key, keys.id, elements)
    }

    #[test]
    fn fresh_batch_verification_warms_every_cache() {
        let (mut core, registry) = core_with(59, 4, 3);
        let batch = sealed_from(&registry, 0, 20);

        let (verdict, fresh) = core.batch_verdict(&batch);
        assert!(verdict && fresh, "sealed batch verifies fresh");
        assert_eq!(core.stats.batch_roots_verified, 1);
        // The root verdict is memoized: re-gossip is a pure cache hit.
        assert_eq!(core.batch_verdict(&batch), (true, false));
        assert_eq!(core.admission_cache().root_hits(), 1);
        // And the per-element cache was warmed: validating the contents
        // afterwards computes no authenticator digests.
        let misses_before = core.admission_cache().misses();
        assert!(core.validate_elements(&batch.elements).iter().all(|v| *v));
        assert_eq!(core.admission_cache().misses(), misses_before);

        // A tampered replay under the cached root re-verifies and fails —
        // and, being the latest verdict for that root, evicts the cached
        // accept (one entry per root; an attacker can force re-hashing but
        // never a wrong verdict).
        let mut tampered = batch.clone();
        tampered.elements[3].content_seed ^= 0xF0;
        assert_eq!(core.batch_verdict(&tampered), (false, true));
        assert_eq!(core.stats.batch_roots_rejected, 1);
        // The genuine batch re-verifies fresh once, then hits again.
        assert_eq!(core.batch_verdict(&batch), (true, true));
        assert_eq!(core.batch_verdict(&batch), (true, false));
    }

    #[test]
    fn sharded_cores_validate_identically_and_roll_up_stats() {
        let clients = 5usize;
        let elements: Vec<Element> = {
            let registry = KeyRegistry::bootstrap(67, 4, clients);
            (0..200)
                .map(|i| {
                    element_from_spec(
                        &registry,
                        clients,
                        (
                            i % (clients + 2),
                            i as u64,
                            100 + (i % 900) as u32,
                            (i % 5) as u8,
                        ),
                    )
                })
                .collect()
        };
        let (mut oracle, _) = core_with(67, 4, clients);
        let expected = oracle.validate_elements(&elements);
        for shards in [2usize, 4, 8] {
            let (mut core, _) = core_with_shards(67, 4, clients, shards);
            core.threads = 4; // force the shard-group fan-out on 1-core hosts
            assert_eq!(core.admission_caches().len(), shards);
            assert_eq!(core.shard_ring().shards(), shards);
            assert_eq!(
                core.validate_elements(&elements),
                expected,
                "{shards} shards"
            );
            // Re-validation is served from the per-shard memos.
            let hits_before: u64 = core.shard_stats().iter().map(|s| s.admission_hits).sum();
            assert_eq!(core.validate_elements(&elements), expected);
            let stats = core.shard_stats();
            assert_eq!(stats.len(), shards);
            assert!(
                stats.iter().map(|s| s.admission_hits).sum::<u64>() > hits_before,
                "re-validation hit the shard caches"
            );
            // The rollup covers every cached verdict exactly once: shard
            // caches partition the id space.
            let cacheable: u64 = expected.len() as u64
                - elements
                    .iter()
                    .filter(|e| {
                        // Unknown-client verdicts are never memoized.
                        !e.client.is_server()
                            && e.size_in_bounds()
                            && oracle.registry.lookup(e.client).is_none()
                    })
                    .map(|e| e.id)
                    .collect::<FxHashSet<_>>()
                    .len() as u64;
            let distinct: FxHashSet<_> = elements.iter().map(|e| e.id).collect();
            let cached: u64 = stats.iter().map(|s| s.cached_verdicts).sum();
            assert!(cached <= distinct.len() as u64);
            assert!(cached <= cacheable);
            assert!(cached > 0);
        }
    }

    #[test]
    fn sharded_batch_verdict_warms_the_right_shard_caches() {
        let (mut core, registry) = core_with_shards(71, 4, 3, 4);
        let batch = sealed_from(&registry, 0, 40);
        let (verdict, fresh) = core.batch_verdict(&batch);
        assert!(verdict && fresh);
        // Every member validates from its shard's warmed cache: no new
        // misses anywhere.
        let misses_before: u64 = core.shard_stats().iter().map(|s| s.admission_misses).sum();
        assert!(core.validate_elements(&batch.elements).iter().all(|v| *v));
        let misses_after: u64 = core.shard_stats().iter().map(|s| s.admission_misses).sum();
        assert_eq!(misses_before, misses_after);
        // The warmed verdicts landed on the shard each id maps to: the
        // per-shard cache sizes partition the batch exactly.
        let mut expected_per_shard = [0usize; 4];
        for e in &batch.elements {
            expected_per_shard[core.shard_ring().shard_of(e.id)] += 1;
        }
        for (shard, cache) in core.admission_caches().iter().enumerate() {
            assert_eq!(cache.len(), expected_per_shard[shard], "shard {shard}");
        }
        // Root verdict memoized on the first shard's cache.
        assert_eq!(core.batch_verdict(&batch), (true, false));
        assert_eq!(core.admission_cache().root_len(), 1);
    }

    #[test]
    fn unknown_owner_batches_are_rejected_but_not_memoized() {
        let (mut core, registry) = core_with(61, 2, 1);
        let late = KeyPair::derive(ProcessId::client(5), 909);
        let key = HmacSha256Key::new(&late.secret.0);
        let elements = vec![Element::new(&late, ElementId::new(5, 1), 300, 1)];
        let batch = AuthedBatch::seal(&key, late.id, elements);
        // Unknown owner: rejected, and the verdict is *not* cached.
        assert_eq!(core.batch_verdict(&batch), (false, true));
        assert_eq!(core.admission_cache().root_len(), 0);
        // Once the client registers, the same envelope verifies.
        registry.register(late);
        assert_eq!(core.batch_verdict(&batch), (true, true));
        assert_eq!(core.batch_verdict(&batch), (true, false));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Batched parallel validation accepts/rejects exactly the same
            /// element sets as the sequential `is_valid` path, for arbitrary
            /// mixes of valid, forged, tampered, server-signed and
            /// Byzantine-impersonated elements — including duplicate ids,
            /// unknown clients and degenerate sizes.
            #[test]
            fn prop_batched_validation_equals_sequential(
                specs in proptest::collection::vec(
                    (0usize..8, 0u64..32, 0u32..2000, 0u8..5),
                    0..120,
                ),
                threads in 1usize..8,
                seed in 1u64..500,
            ) {
                let clients = 5usize;
                let (mut core, registry) = core_with(seed, 4, clients);
                core.threads = threads;
                let elements: Vec<Element> = specs
                    .iter()
                    .map(|s| element_from_spec(&registry, clients, *s))
                    .collect();
                let sequential: Vec<bool> =
                    elements.iter().map(|e| e.is_valid(&registry)).collect();
                let batched = core.validate_elements(&elements);
                prop_assert_eq!(&batched, &sequential);
                // Re-validation through the memo is stable.
                prop_assert_eq!(&core.validate_elements(&elements), &sequential);
                // The single-element memoized path agrees too.
                for (e, expected) in elements.iter().zip(&sequential) {
                    prop_assert_eq!(core.element_valid(e), *expected);
                }
            }

            /// Per-shard parallel validation equals sequential `is_valid`:
            /// the sharded miss path (shard-grouped fan-out into per-shard
            /// caches) accepts/rejects exactly the element sets the
            /// sequential path does, for arbitrary element mixes, thread
            /// counts and shard counts — the sharded mirror of
            /// `prop_batched_validation_equals_sequential`.
            #[test]
            fn prop_sharded_validation_equals_sequential(
                specs in proptest::collection::vec(
                    (0usize..8, 0u64..32, 0u32..2000, 0u8..5),
                    0..120,
                ),
                threads in 1usize..8,
                shards in 1usize..7,
                seed in 1u64..500,
            ) {
                let clients = 5usize;
                let (mut core, registry) = core_with_shards(seed, 4, clients, shards);
                core.threads = threads;
                let elements: Vec<Element> = specs
                    .iter()
                    .map(|s| element_from_spec(&registry, clients, *s))
                    .collect();
                let sequential: Vec<bool> =
                    elements.iter().map(|e| e.is_valid(&registry)).collect();
                let batched = core.validate_elements(&elements);
                prop_assert_eq!(&batched, &sequential);
                // Re-validation through the per-shard memos is stable.
                prop_assert_eq!(&core.validate_elements(&elements), &sequential);
                // The single-element memoized path agrees too.
                for (e, expected) in elements.iter().zip(&sequential) {
                    prop_assert_eq!(core.element_valid(e), *expected);
                }
                // Every memoized verdict sits on the shard its id maps to:
                // the caches partition cleanly and the rollup is exact.
                let stats = core.shard_stats();
                prop_assert_eq!(stats.len(), shards);
                let cached: u64 = stats.iter().map(|s| s.cached_verdicts).sum();
                let distinct: FxHashSet<_> = elements.iter().map(|e| e.id).collect();
                prop_assert!(cached <= distinct.len() as u64);
            }

            /// The admission cache never whitelists: after a warm-up pass
            /// populates the cache, any re-gossip — replays of valid,
            /// forged and previously *rejected* elements, plus tampered
            /// twins of cached entries under their known ids — still
            /// produces exactly the sequential `is_valid` verdicts, through
            /// both the batched and the single-element paths.
            #[test]
            fn prop_admission_cache_survives_regossip_and_tampering(
                specs in proptest::collection::vec(
                    (0usize..8, 0u64..32, 0u32..2000, 0u8..5),
                    1..80,
                ),
                tampers in proptest::collection::vec(
                    (0usize..80, 0u8..4),
                    0..40,
                ),
                seed in 1u64..500,
            ) {
                let clients = 5usize;
                let (mut core, registry) = core_with(seed, 4, clients);
                let elements: Vec<Element> = specs
                    .iter()
                    .map(|s| element_from_spec(&registry, clients, *s))
                    .collect();
                // Warm-up: the cache now holds a verdict per cacheable id,
                // including rejections (forged/tampered/server-signed).
                let _ = core.validate_elements(&elements);

                // The re-gossip wave: every original element again, plus
                // tampered twins reusing known ids with altered identity
                // fields (what a Byzantine peer re-sending under a cached
                // id looks like).
                let mut wave = elements.clone();
                for &(idx, kind) in &tampers {
                    let mut twin = elements[idx % elements.len()];
                    match kind {
                        0 => twin.auth ^= 0x1,
                        1 => twin.size = twin.size.wrapping_add(13),
                        2 => twin.content_seed ^= 0xABCD,
                        _ => twin.client = ProcessId::client((twin.id.client_index() as usize + 1) % clients),
                    }
                    wave.push(twin);
                }
                let sequential: Vec<bool> =
                    wave.iter().map(|e| e.is_valid(&registry)).collect();
                let batched = core.validate_elements(&wave);
                prop_assert_eq!(&batched, &sequential);
                for (e, expected) in wave.iter().zip(&sequential) {
                    prop_assert_eq!(core.element_valid(e), *expected);
                }
            }

            /// Batch-root admission agrees with sequential per-element
            /// `is_valid`, and is strictly stronger under structural
            /// attacks: an honestly sealed batch is admitted untouched;
            /// tampering any single element (which makes that element
            /// individually invalid) rejects the *whole* batch; and
            /// truncating, extending, reordering, re-owning or MAC-forging
            /// the envelope — perturbations sequential validation cannot
            /// even see, since every element stays individually valid — is
            /// rejected too. Verdicts are stable through the root cache.
            #[test]
            fn prop_batch_root_admission_equals_sequential_validation(
                n in 1usize..60,
                perturb in 0u8..8,
                target in 0usize..60,
                seed in 1u64..500,
            ) {
                let clients = 3usize;
                let (mut core, registry) = core_with(seed, 4, clients);
                let sealed = sealed_from(&registry, 0, n);
                let t = target % n;

                let mut batch = sealed.clone();
                // `untouched` tracks whether the perturbation was a no-op
                // (sealed batches must verify exactly when untouched).
                let mut untouched = false;
                // Perturbations 1-3 break one element's own authenticator
                // binding; 4-7 are structural (each element stays valid).
                let mut structural = false;
                match perturb {
                    1 => batch.elements[t].auth ^= 1,
                    2 => batch.elements[t].size = batch.elements[t].size.wrapping_add(7),
                    3 => batch.elements[t].content_seed ^= 0xABCD,
                    4 => {
                        // Truncation: count binding in the MAC fails (or the
                        // batch becomes empty, which never verifies).
                        batch.elements.truncate(n - 1);
                        structural = true;
                    }
                    5 => {
                        // Replayed root with swapped elements.
                        if n >= 2 {
                            batch.elements.swap(0, n - 1);
                            structural = true;
                        } else {
                            untouched = true;
                        }
                    }
                    6 => {
                        batch.mac ^= 1;
                        structural = true;
                    }
                    7 => {
                        // Re-owned envelope: another registered client
                        // claims the batch.
                        batch.client = ProcessId::client(1);
                        structural = true;
                    }
                    _ => untouched = true,
                }

                let all_valid = batch.elements.iter().all(|e| e.is_valid(&registry));
                let (verdict, fresh) = core.batch_verdict(&batch);
                prop_assert!(fresh, "first probe verifies fresh");
                prop_assert_eq!(verdict, untouched, "admitted iff untouched");
                // Admission implies sequential per-element validity...
                prop_assert!(!verdict || all_valid);
                match perturb {
                    1..=3 => prop_assert!(
                        !all_valid,
                        "element tampering is individually visible"
                    ),
                    _ if structural && !batch.elements.is_empty() => prop_assert!(
                        all_valid && !verdict,
                        "structural attacks reject despite all-valid elements"
                    ),
                    _ => {}
                }
                // The verdict is stable through the root cache (all owners
                // here are registered, so every verdict is memoizable).
                prop_assert_eq!(core.batch_verdict(&batch), (verdict, false));
                // On acceptance the warmed per-element cache agrees with
                // `is_valid` for every member.
                if verdict {
                    for e in &batch.elements {
                        prop_assert!(core.element_valid(e));
                        prop_assert!(e.is_valid(&registry));
                    }
                }
                // The untouched sealed batch always still verifies.
                let (orig, _) = core.batch_verdict(&sealed);
                prop_assert!(orig);
            }
        }
    }
}
