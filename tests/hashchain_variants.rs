//! Integration tests for the Hashchain variants the paper's discussion of the
//! hash-reversal bottleneck proposes (Section 4.1): restricting hash-batch
//! counter-signing to a designated 2f+1 signer set, and push-based batch
//! dissemination as an alternative distributed batch-sharing mechanism.
//!
//! Both variants must remain correct Setchains (properties still hold, all
//! elements commit); what changes is how much signing and request traffic the
//! hash-reversal path generates.

use setchain::Algorithm;
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, DeploymentBuilder};

fn base(seed: u64) -> DeploymentBuilder {
    Deployment::builder(Algorithm::Hashchain)
        .servers(7)
        .rate(600.0)
        .collector(50)
        .injection_secs(5)
        .max_run_secs(60)
        .seed(seed)
}

#[test]
fn designated_signers_variant_commits_everything() {
    // n = 7 → f = 3; designate 2f + 1 = 7... use n = 7, f = 3, designated 2f+1 = 7
    // would be all servers, so use a 10-server deployment where 2f+1 = 9 < 10.
    let result = Deployment::builder(Algorithm::Hashchain)
        .servers(10)
        .rate(800.0)
        .collector(50)
        .injection_secs(5)
        .max_run_secs(90)
        .seed(21)
        .designated_signers(9)
        .run();
    assert!(result.added > 3_000);
    assert!(
        result.final_efficiency() > 0.99,
        "eff={}",
        result.final_efficiency()
    );
    assert!(result.all_committed_at.is_some());
}

#[test]
fn designated_signers_reduce_hash_batch_signing() {
    // Compare the number of hash-batches the last (non-designated) server
    // counter-signs: zero under the variant, many under the baseline.
    let build_and_run = |designated: Option<usize>| {
        let mut builder = Deployment::builder(Algorithm::Hashchain)
            .servers(10)
            .rate(800.0)
            .collector(50)
            .injection_secs(4)
            .max_run_secs(60)
            .seed(22);
        if let Some(k) = designated {
            builder = builder.designated_signers(k);
        }
        let mut deployment = builder.build();
        deployment.sim.run_until(SimTime::from_secs(60));
        deployment
    };
    let baseline = build_and_run(None);
    let variant = build_and_run(Some(9));
    // Consistency between servers inside and outside the designated set.
    let d0 = variant.server(0);
    let d9 = variant.server(9);
    assert!(d0.state().epoch() > 0);
    assert!(d0.state().check_consistent_with(d9.state()));
    assert!(d9.state().check_consistent_sets());
    assert!(d9.state().check_unique_epoch());
    // The non-designated server emits no epoch-proofs of its own, so the
    // proof count per epoch tops out at the designated set size; the baseline
    // eventually collects all 10.
    let baseline_proofs: usize = (1..=baseline.server(0).state().epoch())
        .map(|e| baseline.server(0).state().proofs_for(e).len())
        .max()
        .unwrap_or(0);
    let variant_proofs: usize = (1..=d0.state().epoch())
        .map(|e| d0.state().proofs_for(e).len())
        .max()
        .unwrap_or(0);
    assert!(
        baseline_proofs == 10,
        "baseline max proofs {baseline_proofs}"
    );
    assert!(
        variant_proofs <= 9,
        "variant must not collect more proofs than designated signers ({variant_proofs})"
    );
    // Commitment still requires only f + 1 = 5, so both commit everything.
    let committed_baseline = baseline.trace.committed_count_by(SimTime::from_secs(60));
    let committed_variant = variant.trace.committed_count_by(SimTime::from_secs(60));
    assert!(committed_baseline as f64 >= 0.99 * baseline.trace.added_count() as f64);
    assert!(committed_variant as f64 >= 0.99 * variant.trace.added_count() as f64);
}

#[test]
fn push_batches_variant_commits_without_request_round_trips() {
    let mut deployment = base(31).push_batches().build();
    deployment.sim.run_until(SimTime::from_secs(60));
    let added = deployment.trace.added_count();
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(60));
    assert!(added > 2_000);
    assert!(
        committed as f64 >= 0.99 * added as f64,
        "{committed}/{added} committed with push-based dissemination"
    );
    // The whole point of the variant: batch contents arrive before the
    // hash-batches do, so `Request_batch` is (almost) never needed (the
    // baseline count is checked by the companion test below).
    let total_requests: u64 = (0..7)
        .map(|i| deployment.server(i).stats().batch_requests_sent)
        .sum();
    assert!(
        total_requests <= 5,
        "push-based dissemination should make batch requests rare (sent {total_requests})"
    );
    // Correctness unchanged.
    let s0 = deployment.server(0);
    let s1 = deployment.server(1);
    assert!(s0.state().check_consistent_with(s1.state()));
    assert!(s0.state().check_unique_epoch());
    assert!(s0.state().check_consistent_sets());
}

#[test]
fn baseline_hashchain_does_send_batch_requests() {
    // Sanity check for the previous test's claim: without pushing, the
    // hash-reversal service is exercised heavily.
    let mut deployment = base(31).build();
    deployment.sim.run_until(SimTime::from_secs(60));
    let total_requests: u64 = (0..7)
        .map(|i| deployment.server(i).stats().batch_requests_sent)
        .sum();
    assert!(
        total_requests > 50,
        "baseline Hashchain relies on Request_batch (sent {total_requests})"
    );
}

#[test]
fn variants_compose_and_stay_consistent() {
    let result = Deployment::builder(Algorithm::Hashchain)
        .servers(10)
        .rate(600.0)
        .collector(50)
        .injection_secs(4)
        .max_run_secs(60)
        .seed(33)
        .designated_signers(9)
        .push_batches()
        .run();
    assert!(
        result.final_efficiency() > 0.99,
        "eff={}",
        result.final_efficiency()
    );
    assert!(result.all_committed_at.is_some());
}
