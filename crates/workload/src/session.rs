//! Typed client sessions: the client-facing Setchain API (`add`, `get`,
//! `get_epoch`) without raw [`SetchainMsg`] plumbing.
//!
//! A [`ClientSession`] scripts requests against a [`Deployment`], installs
//! itself as a simulated actor, and — after the run — interprets every
//! response into typed results: [`AddReceipt`] for adds, [`SnapshotView`]
//! for `get`, and [`VerifiedEpoch`] for `get_epoch`, with `f + 1`
//! epoch-proof verification ([`setchain::verify_epoch`]) already applied.
//! The same session script works against any algorithm, because servers are
//! reached through the variant-agnostic deployment facade.
//!
//! ```no_run
//! use setchain::Algorithm;
//! use setchain_simnet::SimTime;
//! use setchain_workload::Deployment;
//!
//! let mut deployment = Deployment::builder(Algorithm::Hashchain)
//!     .servers(4)
//!     .rate(200.0)
//!     .collector(25)
//!     .injection_secs(5)
//!     .max_run_secs(30)
//!     .build();
//!
//! // Script: add three elements through server 0, then audit epoch 1
//! // through a *different*, possibly Byzantine, server.
//! let mut session = deployment.client_session(100, 777);
//! for i in 0..3 {
//!     session.add(SimTime::from_millis(500 + i * 100), 0, 438, 1000 + i);
//! }
//! session.get(SimTime::from_secs(20), 2);
//! session.get_epoch(SimTime::from_secs(20), 2, 1);
//! session.install(&mut deployment);
//!
//! deployment.sim.run_until(SimTime::from_secs(25));
//!
//! let outcome = session.outcome(&deployment);
//! for epoch in outcome.verified() {
//!     println!("epoch {} verified with {} proofs", epoch.epoch, epoch.proof_count);
//! }
//! ```

use std::collections::HashSet;

use setchain::{
    batch_tree, prove_element, prove_epoch_inclusion, AuthedBatch, Element, ElementId,
    ElementProof, EpochInclusionProof, EpochProof, EpochVerification, GetSnapshot, LightClient,
    SetchainMsg,
};
use setchain_crypto::{Digest256, KeyPair, ProcessId};
use setchain_simnet::SimTime;

use crate::deploy::Deployment;
use crate::driver::{RequestClient, RetryAdd, RetryPolicy};

/// Receipt for one scripted `add`: which element was handed to which server,
/// and when.
///
/// For retried adds ([`ClientSession::add_with_retry`]) the receipt returned
/// at scripting time is provisional — `attempts` is still `0` and
/// `confirmed_at` is `None`. The post-run resolution (actual attempt count,
/// the server whose verified epoch confirmed the element, and when) is in
/// [`SessionOutcome::retried`].
#[derive(Clone, Copy, Debug)]
pub struct AddReceipt {
    /// Id of the added element (use it to check inclusion later).
    pub id: ElementId,
    /// The element as signed and sent.
    pub element: Element,
    /// Server the `add` was sent to (for retried adds: the server credited
    /// with the add — the first target until a confirmation names another).
    pub server: ProcessId,
    /// Simulated send time (first attempt, for retried adds).
    pub at: SimTime,
    /// Send attempts made: `1` for plain scripted adds; for retried adds,
    /// the actual count once resolved through [`SessionOutcome::retried`].
    pub attempts: u32,
    /// Simulated time a verified epoch confirmed the element, if known
    /// (only ever `Some` on resolved retried receipts).
    pub confirmed_at: Option<SimTime>,
    /// True if the retry machine exhausted its attempt budget without
    /// confirmation (never set on plain scripted adds).
    pub gave_up: bool,
}

/// Receipt for one scripted batch-authenticated `add`
/// ([`ClientSession::add_batch`]): the sealed batch's Merkle root, the
/// element ids it covers, and per-element membership proofs against that
/// root.
#[derive(Clone, Debug)]
pub struct BatchReceipt {
    /// Merkle root the single batch MAC covers.
    pub root: Digest256,
    /// Ids of the batched elements, in sealed (submission) order.
    pub ids: Vec<ElementId>,
    /// Server the batch was sent to.
    pub server: ProcessId,
    /// Simulated send time.
    pub at: SimTime,
    elements: Vec<Element>,
}

impl BatchReceipt {
    /// Number of elements in the batch.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if the batch is empty (never for receipts from `add_batch`).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The batched elements, in sealed order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Merkle membership proof for the `index`-th batched element against
    /// [`BatchReceipt::root`].
    pub fn proof(&self, index: usize) -> Option<ElementProof> {
        if index >= self.elements.len() {
            return None;
        }
        Some(prove_element(
            &batch_tree(&self.elements),
            &self.elements,
            index,
        ))
    }

    /// Merkle membership proof for the batched element with id `id`.
    pub fn proof_for(&self, id: ElementId) -> Option<ElementProof> {
        let index = self.elements.iter().position(|e| e.id == id)?;
        self.proof(index)
    }
}

/// A typed `get` response: the server's state summary.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotView {
    /// Server that answered.
    pub server: ProcessId,
    /// Simulated arrival time of the response.
    pub at: SimTime,
    /// The state summary.
    pub snapshot: GetSnapshot,
}

/// A typed `get_epoch` response with client-side verification already
/// performed: the epoch contents plus the `f + 1`-proof verdict.
#[derive(Clone, Debug)]
pub struct VerifiedEpoch {
    /// Server that answered (trusted only through the proofs).
    pub server: ProcessId,
    /// Simulated arrival time of the response.
    pub at: SimTime,
    /// Epoch number.
    pub epoch: u64,
    /// Elements of the epoch as reported by the server.
    pub elements: Vec<Element>,
    /// Number of epoch-proofs the server shipped.
    pub proof_count: usize,
    /// The epoch-proofs themselves, as shipped — what an
    /// [`inclusion_proof`](VerifiedEpoch::inclusion_proof) is verified
    /// against.
    pub proofs: Vec<EpochProof>,
    /// The verification verdict ([`setchain::verify_epoch`] over the
    /// response).
    pub verification: EpochVerification,
    /// Of this session's own adds, the ids confirmed by this epoch — empty
    /// unless the epoch verified.
    pub confirmed: Vec<ElementId>,
}

impl VerifiedEpoch {
    /// True if the epoch carried at least `f + 1` valid proofs from distinct
    /// servers.
    pub fn is_verified(&self) -> bool {
        self.verification.is_verified()
    }

    /// True if the (verified or not) epoch contents include `id`.
    pub fn contains(&self, id: ElementId) -> bool {
        self.elements.iter().any(|e| e.id == id)
    }

    /// A self-contained element→epoch inclusion proof for `id`, or `None` if
    /// the epoch does not contain it.
    ///
    /// The proof verifies against the PKI and the epoch-proofs *alone*
    /// ([`EpochInclusionProof::verify`]): a third party can check membership
    /// without ever seeing this epoch's element set.
    pub fn inclusion_proof(&self, id: ElementId) -> Option<EpochInclusionProof> {
        prove_epoch_inclusion(self.epoch, &self.elements, id)
    }
}

/// Everything a session learned from a run, in typed form.
#[derive(Clone, Debug, Default)]
pub struct SessionOutcome {
    /// `get` responses, in arrival order.
    pub snapshots: Vec<SnapshotView>,
    /// `get_epoch` responses, in arrival order, each already verified.
    pub epochs: Vec<VerifiedEpoch>,
    /// Resolved receipts for the retried adds
    /// ([`ClientSession::add_with_retry`]), in submission order: actual
    /// attempt count, the server whose verified epoch confirmed the element
    /// (in `server`), and the confirmation time.
    pub retried: Vec<AddReceipt>,
}

impl SessionOutcome {
    /// True if every retried add confirmed within its attempt budget
    /// (vacuously true without retried adds).
    pub fn all_retries_confirmed(&self) -> bool {
        self.retried.iter().all(|r| r.confirmed_at.is_some())
    }

    /// The epochs that verified with `f + 1` proofs.
    pub fn verified(&self) -> impl Iterator<Item = &VerifiedEpoch> {
        self.epochs.iter().filter(|e| e.is_verified())
    }

    /// Number of verified epochs.
    pub fn verified_count(&self) -> usize {
        self.verified().count()
    }

    /// Ids of this session's adds confirmed by any verified epoch.
    pub fn confirmed_ids(&self) -> HashSet<ElementId> {
        self.verified()
            .flat_map(|e| e.confirmed.iter().copied())
            .collect()
    }
}

/// A typed client session against one deployment.
///
/// Opened with [`Deployment::client_session`]; the session owns a registered
/// key pair, scripts `add`/`get`/`get_epoch` requests, and interprets the
/// responses after the run (see the module docs for the full workflow).
pub struct ClientSession {
    id: ProcessId,
    keys: KeyPair,
    generator: setchain::ElementGenerator,
    light: LightClient,
    script: Vec<(SimTime, ProcessId, SetchainMsg)>,
    /// Deployment size, for building failover rings.
    servers: usize,
    /// Adds driven by the retry/failover machine (handed to the actor at
    /// install time).
    retries: Vec<RetryAdd>,
    /// Provisional receipts for the retried adds, resolved in `outcome()`.
    retry_receipts: Vec<AddReceipt>,
    installed: bool,
}

impl ClientSession {
    /// Opens a session: derives and registers the client key pair. Called
    /// through [`Deployment::client_session`].
    pub(crate) fn open(deployment: &mut Deployment, client_index: usize, key_seed: u64) -> Self {
        let id = ProcessId::client(client_index);
        let keys = KeyPair::derive(id, key_seed);
        deployment.registry.register(keys);
        ClientSession {
            id,
            keys,
            generator: setchain::ElementGenerator::new(keys),
            light: LightClient::new(
                deployment.registry.clone(),
                deployment.scenario.servers,
                deployment.scenario.setchain_f(),
            ),
            script: Vec::new(),
            servers: deployment.scenario.servers,
            retries: Vec::new(),
            retry_receipts: Vec::new(),
            installed: false,
        }
    }

    /// This session's process id.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// This session's registered key pair.
    pub fn keys(&self) -> &KeyPair {
        &self.keys
    }

    /// Ids of the elements this session has added so far.
    pub fn added(&self) -> &HashSet<ElementId> {
        self.light.added()
    }

    /// Scripts `S.add_v(e)` at `at` against server `server` with a freshly
    /// generated element of `size` bytes whose payload derives from
    /// `content_seed` (sequence numbers are assigned automatically).
    ///
    /// This is the single-element form; [`ClientSession::add_batch`] submits
    /// many elements under one batch-root MAC.
    pub fn add(&mut self, at: SimTime, server: usize, size: u32, content_seed: u64) -> AddReceipt {
        let element = self.generator.next_element(size, content_seed);
        self.add_element(at, server, element)
    }

    /// Scripts a batch-authenticated add at `at` against server `server`:
    /// generates one element per `(size, content_seed)` entry, Merkle-batches
    /// them, and seals the batch under this session's key — one MAC over the
    /// batch root instead of relying on the per-element authenticators
    /// ([`setchain::AuthMode::BatchRoot`] submission).
    pub fn add_batch(
        &mut self,
        at: SimTime,
        server: usize,
        specs: impl IntoIterator<Item = (u32, u64)>,
    ) -> BatchReceipt {
        let elements: Vec<Element> = specs
            .into_iter()
            .map(|(size, content_seed)| self.generator.next_element(size, content_seed))
            .collect();
        self.add_batch_elements(at, server, elements)
    }

    /// Scripts a batch-authenticated add for elements built by the caller
    /// (they must claim this session's id to validate server-side).
    pub fn add_batch_elements(
        &mut self,
        at: SimTime,
        server: usize,
        elements: Vec<Element>,
    ) -> BatchReceipt {
        self.assert_scriptable();
        assert!(!elements.is_empty(), "batched adds must not be empty");
        let server = ProcessId::server(server);
        let batch = AuthedBatch::seal(self.generator.auth_key(), self.id, elements);
        let receipt = BatchReceipt {
            root: batch.root,
            ids: batch.elements.iter().map(|e| e.id).collect(),
            server,
            at,
            elements: batch.elements.clone(),
        };
        let msg = self.light.add_batch(batch);
        self.script.push((at, server, msg));
        receipt
    }

    /// Scripts `S.add_v(e)` for an element built by the caller (it must be
    /// signed with this session's keys to validate server-side).
    pub fn add_element(&mut self, at: SimTime, server: usize, element: Element) -> AddReceipt {
        self.assert_scriptable();
        let server = ProcessId::server(server);
        let msg = self.light.add(element);
        self.script.push((at, server, msg));
        AddReceipt {
            id: element.id,
            element,
            server,
            at,
            attempts: 1,
            confirmed_at: None,
            gave_up: false,
        }
    }

    /// Scripts a fault-tolerant `S.add_v(e)` at `at`: the element is sent to
    /// server `server` and driven by the deadline/retry/failover machine
    /// ([`RetryPolicy`]) until a verified epoch confirms it — re-sent to the
    /// next server (round-robin over the whole deployment) whenever the
    /// doubling per-attempt deadline passes, for at most
    /// `policy.max_attempts` attempts. Duplicate deliveries are safe: servers
    /// dedup by element id.
    ///
    /// The returned receipt is provisional; read the resolved receipt
    /// (attempt count, confirming server, confirmation time) from
    /// [`SessionOutcome::retried`] after the run.
    pub fn add_with_retry(
        &mut self,
        at: SimTime,
        server: usize,
        size: u32,
        content_seed: u64,
        policy: RetryPolicy,
    ) -> AddReceipt {
        self.assert_scriptable();
        let element = self.generator.next_element(size, content_seed);
        // Register the id with the light client (the message itself is
        // rebuilt by the retry machine on every attempt).
        let _ = self.light.add(element);
        let servers = self.servers;
        let targets: Vec<ProcessId> = (0..servers)
            .map(|k| ProcessId::server((server + k) % servers))
            .collect();
        let receipt = AddReceipt {
            id: element.id,
            element,
            server: ProcessId::server(server),
            at,
            attempts: 0,
            confirmed_at: None,
            gave_up: false,
        };
        self.retries.push(RetryAdd {
            element,
            first_at: at,
            targets,
            policy,
        });
        self.retry_receipts.push(receipt);
        receipt
    }

    /// Scripts `S.get_v()` at `at` against server `server`.
    pub fn get(&mut self, at: SimTime, server: usize) {
        self.assert_scriptable();
        let msg = self.light.get();
        self.script.push((at, ProcessId::server(server), msg));
    }

    /// Scripts `S.get_epoch_v(epoch)` at `at` against server `server`.
    pub fn get_epoch(&mut self, at: SimTime, server: usize, epoch: u64) {
        self.assert_scriptable();
        let msg = self.light.get_epoch(epoch);
        self.script.push((at, ProcessId::server(server), msg));
    }

    /// Requests scripted after [`ClientSession::install`] would never be
    /// delivered (the script has already been handed to the simulated
    /// actor); fail loudly instead of dropping them silently.
    fn assert_scriptable(&self) {
        assert!(
            !self.installed,
            "session already installed: script all requests before install()"
        );
    }

    /// Scripts `get_epoch` for every epoch in `epochs` (inclusive range),
    /// all at the same time against the same server — the audit pattern.
    pub fn get_epochs(
        &mut self,
        at: SimTime,
        server: usize,
        epochs: std::ops::RangeInclusive<u64>,
    ) {
        for epoch in epochs {
            self.get_epoch(at, server, epoch);
        }
    }

    /// Installs the scripted session as a simulated client actor. Must be
    /// called exactly once, before the run that should serve the script.
    pub fn install(&mut self, deployment: &mut Deployment) {
        assert!(!self.installed, "session already installed");
        self.installed = true;
        let script = std::mem::take(&mut self.script);
        let mut client = RequestClient::new(script);
        if !self.retries.is_empty() {
            // The cloned light client already knows every retried element id,
            // so the actor can verify confirmations on its own.
            client = client.with_retries(std::mem::take(&mut self.retries), self.light.clone());
        }
        deployment.sim.add_process(self.id, Box::new(client));
    }

    /// Interprets every response received so far into typed results,
    /// verifying each epoch response against the PKI with the deployment's
    /// `f + 1` quorum. Callable any time after [`ClientSession::install`]
    /// (typically after the run).
    pub fn outcome(&self, deployment: &Deployment) -> SessionOutcome {
        assert!(self.installed, "install the session before reading results");
        let client: &RequestClient = deployment
            .sim
            .process(self.id)
            .expect("session actor installed");
        let mut outcome = SessionOutcome::default();
        for (at, from, response) in client.responses() {
            match response {
                SetchainMsg::GetResponse { snapshot, .. } => {
                    outcome.snapshots.push(SnapshotView {
                        server: *from,
                        at: *at,
                        snapshot: *snapshot,
                    });
                }
                SetchainMsg::EpochResponse {
                    epoch,
                    elements,
                    proofs,
                    ..
                } => {
                    let (verification, confirmed) = self
                        .light
                        .verify_response(response)
                        .expect("epoch responses are verifiable");
                    outcome.epochs.push(VerifiedEpoch {
                        server: *from,
                        at: *at,
                        epoch: *epoch,
                        elements: elements.clone(),
                        proof_count: proofs.len(),
                        proofs: proofs.clone(),
                        verification,
                        confirmed,
                    });
                }
                _ => {}
            }
        }
        let reports = client.retry_reports();
        for receipt in &self.retry_receipts {
            let mut resolved = *receipt;
            if let Some(report) = reports.iter().find(|r| r.id == receipt.id) {
                resolved.attempts = report.attempts;
                resolved.confirmed_at = report.confirmed_at;
                resolved.gave_up = report.gave_up;
                if let Some(final_server) = report.final_server {
                    resolved.server = final_server;
                }
            }
            outcome.retried.push(resolved);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain::Algorithm;

    #[test]
    fn session_scripts_install_and_report() {
        let mut deployment = Deployment::builder(Algorithm::Hashchain)
            .servers(4)
            .rate(200.0)
            .collector(25)
            .injection_secs(3)
            .max_run_secs(30)
            .seed(77)
            .build();
        let mut session = deployment.client_session(50, 123);
        assert_eq!(session.id(), ProcessId::client(50));
        let receipts: Vec<AddReceipt> = (0..3)
            .map(|i| session.add(SimTime::from_millis(500 + i * 100), 0, 438, 900 + i))
            .collect();
        assert_eq!(session.added().len(), 3);
        assert!(receipts.iter().all(|r| r.server == ProcessId::server(0)));
        session.get(SimTime::from_secs(20), 2);
        session.get_epochs(SimTime::from_secs(20), 2, 1..=15);
        session.install(&mut deployment);

        deployment.sim.run_until(SimTime::from_secs(25));
        let outcome = session.outcome(&deployment);
        assert_eq!(outcome.snapshots.len(), 1);
        assert!(outcome.snapshots[0].snapshot.epoch > 0);
        assert_eq!(outcome.epochs.len(), 15);
        assert!(outcome.verified_count() > 0, "some epochs verified");
        let confirmed = outcome.confirmed_ids();
        assert_eq!(
            confirmed.len(),
            3,
            "all three session adds confirmed through a single server"
        );
        assert!(receipts.iter().all(|r| confirmed.contains(&r.id)));
    }

    #[test]
    fn batched_adds_commit_and_prove_inclusion() {
        let mut deployment = Deployment::builder(Algorithm::Hashchain)
            .servers(4)
            .rate(200.0)
            .collector(25)
            .injection_secs(3)
            .max_run_secs(30)
            .seed(31)
            .build();
        let registry = deployment.registry.clone();
        let mut session = deployment.client_session(60, 321);
        let receipt = session.add_batch(
            SimTime::from_millis(500),
            0,
            (0..5u64).map(|i| (438, 4000 + i)),
        );
        assert_eq!(receipt.len(), 5);
        assert!(!receipt.is_empty());
        assert_eq!(session.added().len(), 5);
        // Per-element membership proofs verify against the sealed root.
        for (i, id) in receipt.ids.iter().enumerate() {
            let proof = receipt.proof_for(*id).expect("id is in the batch");
            assert_eq!(proof.element(), receipt.elements()[i]);
            assert!(proof.verify(&receipt.elements()[i], &receipt.root));
        }
        assert!(receipt.proof(5).is_none());
        assert!(receipt
            .proof_for(setchain::ElementId::new(99, 99))
            .is_none());

        session.get_epochs(SimTime::from_secs(20), 2, 1..=15);
        session.install(&mut deployment);
        deployment.sim.run_until(SimTime::from_secs(25));

        let outcome = session.outcome(&deployment);
        let confirmed = outcome.confirmed_ids();
        assert_eq!(confirmed.len(), 5, "the whole batch commits");
        // Element→epoch inclusion proofs verify without the element set.
        let f = deployment.scenario.setchain_f();
        let mut proven = 0;
        for epoch in outcome.verified() {
            for id in &receipt.ids {
                let Some(proof) = epoch.inclusion_proof(*id) else {
                    continue;
                };
                let element = receipt.elements()[receipt.ids.iter().position(|x| x == id).unwrap()];
                assert!(proof.verify(&registry, 4, f, &element, &epoch.proofs));
                proven += 1;
            }
        }
        assert_eq!(
            proven, 5,
            "each batched element proven in exactly one epoch"
        );
    }

    #[test]
    fn retried_add_confirms_without_faults() {
        let mut deployment = Deployment::builder(Algorithm::Hashchain)
            .servers(4)
            .rate(200.0)
            .collector(25)
            .injection_secs(3)
            .max_run_secs(30)
            .seed(99)
            .build();
        let mut session = deployment.client_session(70, 555);
        let receipt = session.add_with_retry(
            SimTime::from_millis(500),
            1,
            438,
            7000,
            RetryPolicy::default(),
        );
        assert_eq!(receipt.attempts, 0, "provisional receipt: nothing sent yet");
        assert!(receipt.confirmed_at.is_none());
        session.install(&mut deployment);

        deployment.sim.run_until(SimTime::from_secs(25));
        let outcome = session.outcome(&deployment);
        assert!(outcome.all_retries_confirmed());
        let resolved = outcome.retried[0];
        assert_eq!(resolved.id, receipt.id);
        assert!(resolved.attempts >= 1);
        assert!(resolved.confirmed_at.is_some());
        assert!(!resolved.gave_up);
        assert!(resolved.server.is_server());
    }

    #[test]
    #[should_panic(expected = "already installed")]
    fn double_install_panics() {
        let mut deployment = Deployment::builder(Algorithm::Vanilla)
            .servers(4)
            .injection_secs(1)
            .max_run_secs(5)
            .build();
        let mut session = deployment.client_session(9, 1);
        session.install(&mut deployment);
        session.install(&mut deployment);
    }

    #[test]
    #[should_panic(expected = "install the session")]
    fn outcome_before_install_panics() {
        let mut deployment = Deployment::builder(Algorithm::Vanilla)
            .servers(4)
            .injection_secs(1)
            .max_run_secs(5)
            .build();
        let session = deployment.client_session(9, 1);
        let _ = session.outcome(&deployment);
    }
}
