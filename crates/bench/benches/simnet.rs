//! Scheduler microbenchmarks: the raw per-event cost of the simnet event
//! loop, isolated from crypto and application logic.
//!
//! Three shapes cover the scheduler's hot paths:
//!
//! * **event churn** — a ping/pong pair exchanging many point-to-point
//!   messages: heap push/pop, slab dispatch, action application.
//! * **timer storm** — many processes firing periodic timers: the split
//!   timer queue's small-`Copy`-record fast path.
//! * **broadcast fan-in** — many senders hitting one receiver at the same
//!   instant (zero-jitter network): same-tick delivery coalescing through
//!   `on_messages`.

use std::any::Any;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use setchain_simnet::{
    Context, NetworkConfig, Process, ProcessId, SimDuration, SimTime, Simulation, SimulationConfig,
    TimerToken, Wire,
};

#[derive(Clone, Debug)]
struct Ping(#[allow(dead_code)] u64);

impl Wire for Ping {
    fn wire_size(&self) -> usize {
        16
    }
}

/// Zero-jitter LAN so same-instant arrivals actually coalesce.
fn flat_lan() -> NetworkConfig {
    let mut net = NetworkConfig::lan();
    net.jitter = SimDuration::ZERO;
    net
}

struct Pinger {
    peer: ProcessId,
    remaining: u64,
}

impl Process<Ping> for Pinger {
    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        ctx.send(self.peer, Ping(self.remaining));
    }
    fn on_message(&mut self, from: ProcessId, msg: Ping, ctx: &mut Context<'_, Ping>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(from, msg);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Ticker {
    period: SimDuration,
    fired: u64,
}

impl Process<Ping> for Ticker {
    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        ctx.set_timer(self.period, 1);
    }
    fn on_message(&mut self, _: ProcessId, _: Ping, _: &mut Context<'_, Ping>) {}
    fn on_timer(&mut self, _: TimerToken, ctx: &mut Context<'_, Ping>) {
        self.fired += 1;
        ctx.set_timer(self.period, 1);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Broadcasts one message to every peer each time its timer fires.
struct Broadcaster {
    peers: Vec<ProcessId>,
    rounds: u64,
}

impl Process<Ping> for Broadcaster {
    fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
        ctx.set_timer(SimDuration::from_micros(100), 1);
    }
    fn on_message(&mut self, _: ProcessId, _: Ping, _: &mut Context<'_, Ping>) {}
    fn on_timer(&mut self, _: TimerToken, ctx: &mut Context<'_, Ping>) {
        ctx.send_to_all(self.peers.iter().copied(), Ping(self.rounds));
        if self.rounds > 0 {
            self.rounds -= 1;
            ctx.set_timer(SimDuration::from_micros(100), 1);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counts messages; `on_messages` overridden to observe coalesced batches.
#[derive(Default)]
struct Sink {
    received: u64,
    batches: u64,
}

impl Process<Ping> for Sink {
    fn on_message(&mut self, _: ProcessId, _: Ping, _: &mut Context<'_, Ping>) {
        self.received += 1;
        self.batches += 1;
    }
    fn on_messages(&mut self, batch: &mut Vec<(ProcessId, Ping)>, _: &mut Context<'_, Ping>) {
        self.received += batch.len() as u64;
        self.batches += 1;
        batch.clear();
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn bench_event_churn(c: &mut Criterion) {
    const ROUNDTRIPS: u64 = 20_000;
    let mut group = c.benchmark_group("simnet/event_churn");
    group.throughput(Throughput::Elements(2 * ROUNDTRIPS));
    group.bench_function("ping_pong_20k", |b| {
        b.iter(|| {
            let mut sim: Simulation<Ping> = Simulation::new(SimulationConfig {
                seed: 1,
                network: flat_lan(),
            });
            sim.add_process(
                ProcessId::server(0),
                Box::new(Pinger {
                    peer: ProcessId::server(1),
                    remaining: ROUNDTRIPS,
                }),
            );
            sim.add_process(
                ProcessId::server(1),
                Box::new(Pinger {
                    peer: ProcessId::server(0),
                    remaining: ROUNDTRIPS,
                }),
            );
            sim.run_until_quiescent(SimTime::from_secs(3600));
            criterion::black_box(sim.events_processed())
        });
    });
    group.finish();
}

fn bench_timer_storm(c: &mut Criterion) {
    const TICKERS: usize = 64;
    const SIM_SECS: u64 = 5;
    // 1 ms period ⇒ 1 000 fires per ticker per simulated second.
    let expected = TICKERS as u64 * SIM_SECS * 1_000;
    let mut group = c.benchmark_group("simnet/timer_storm");
    group.throughput(Throughput::Elements(expected));
    group.bench_function("64_tickers_1ms_5s", |b| {
        b.iter(|| {
            let mut sim: Simulation<Ping> = Simulation::new(SimulationConfig {
                seed: 2,
                network: flat_lan(),
            });
            for i in 0..TICKERS {
                sim.add_process(
                    ProcessId::server(i),
                    Box::new(Ticker {
                        period: SimDuration::from_millis(1),
                        fired: 0,
                    }),
                );
            }
            sim.run_until(SimTime::from_secs(SIM_SECS));
            criterion::black_box(sim.events_processed())
        });
    });
    group.finish();
}

fn bench_broadcast_fan_in(c: &mut Criterion) {
    const SENDERS: usize = 16;
    const ROUNDS: u64 = 500;
    let mut group = c.benchmark_group("simnet/broadcast_fan_in");
    group.throughput(Throughput::Elements(SENDERS as u64 * ROUNDS));
    group.bench_function("16_senders_500_rounds", |b| {
        b.iter(|| {
            let mut sim: Simulation<Ping> = Simulation::new(SimulationConfig {
                seed: 3,
                network: flat_lan(),
            });
            let sink = ProcessId::server(0);
            sim.add_process(sink, Box::new(Sink::default()));
            for i in 1..=SENDERS {
                sim.add_process(
                    ProcessId::server(i),
                    Box::new(Broadcaster {
                        peers: vec![sink],
                        rounds: ROUNDS,
                    }),
                );
            }
            sim.run_until_quiescent(SimTime::from_secs(3600));
            let s: &Sink = sim.process(sink).expect("sink exists");
            assert_eq!(s.received, SENDERS as u64 * (ROUNDS + 1));
            // Coalescing must actually trigger: all 16 same-instant arrivals
            // land in far fewer handler invocations than messages.
            assert!(s.batches < s.received);
            criterion::black_box(s.batches)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_churn,
    bench_timer_storm,
    bench_broadcast_fan_in
);
criterion_main!(benches);
