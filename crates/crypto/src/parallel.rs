//! Chunked data-parallel map over scoped OS threads.
//!
//! This is the workspace's one shared "embarrassingly parallel loop"
//! primitive: the input is split into contiguous chunks, one per worker,
//! each worker writes its results into its own output vector (no shared
//! mutable state, no locks), and `std::thread::scope` joins everything
//! before returning. It lives in the crypto crate — the root of the crate
//! graph — so that both the execution layer (`setchain_exec::parallel_map`
//! re-exports it) and the Setchain servers' batched element/signature
//! validation can use it without a dependency cycle.

use std::num::NonZeroUsize;

/// Inputs shorter than this are mapped sequentially: below it, thread spawn
/// overhead dominates any speedup.
pub const MIN_PARALLEL_LEN: usize = 256;

/// Number of worker threads to use by default: the available parallelism,
/// capped so tiny inputs do not pay thread spawn costs for nothing.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item of `items`, producing the results in order.
///
/// With `threads <= 1` or fewer than [`MIN_PARALLEL_LEN`] items this
/// degenerates to a sequential map (same results, no spawning). The function
/// must be pure with respect to the slice: results are
/// position-for-position identical to `items.iter().map(f).collect()`.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_min(items, threads, MIN_PARALLEL_LEN, f)
}

/// [`parallel_map`] with an explicit sequential-fallback threshold.
///
/// `MIN_PARALLEL_LEN` is calibrated for cheap per-item work (one HMAC, one
/// signature check). Callers whose items are individually expensive — e.g.
/// `setchain-compress` compressing 64 KiB chunks — pass a smaller `min_len`
/// so even a handful of items fans out across cores.
pub fn parallel_map_min<T, R, F>(items: &[T], threads: usize, min_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() < min_len.max(2) {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    let chunk_len = items.len().div_ceil(workers);
    let mut chunk_results: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        // One contiguous input chunk per worker; each worker produces its own
        // output vector (no shared mutable state), and the chunks are
        // concatenated in order afterwards.
        let mut handles = Vec::with_capacity(workers);
        for chunk in items.chunks(chunk_len) {
            let f = &f;
            handles.push(scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()));
        }
        for handle in handles {
            chunk_results.push(handle.join().expect("validation worker panicked"));
        }
    });
    let mut results = Vec::with_capacity(items.len());
    for chunk in chunk_results {
        results.extend(chunk);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map_below_and_above_threshold() {
        for len in [0usize, 10, MIN_PARALLEL_LEN - 1, MIN_PARALLEL_LEN, 5000] {
            let items: Vec<u64> = (0..len as u64).collect();
            let par = parallel_map(&items, 8, |x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let seq: Vec<u64> = items
                .iter()
                .map(|x| x.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect();
            assert_eq!(par, seq, "len={len}");
        }
    }

    #[test]
    fn single_thread_and_oversubscription_work() {
        let items: Vec<u32> = (0..300).collect();
        assert_eq!(parallel_map(&items, 1, |x| x + 1).len(), 300);
        assert_eq!(parallel_map(&items, 1024, |x| x + 1)[299], 300);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn explicit_min_len_fans_out_small_inputs() {
        // Below MIN_PARALLEL_LEN, but parallel_map_min with min_len=2 takes
        // the spawning path and must still produce in-order results.
        let items: Vec<u64> = (0..7).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(parallel_map_min(&items, 4, 2, |x| x * 3), seq);
        // min_len is clamped to at least 2: a single item never spawns.
        assert_eq!(parallel_map_min(&items[..1], 4, 0, |x| x * 3), vec![0]);
    }
}
