//! Ledger transaction types used by the three Setchain algorithms.
//!
//! Vanilla appends individual elements and epoch-proofs; Compresschain
//! appends compressed batches; Hashchain appends fixed-size hash-batches.
//! A single enum covers all of them so that any algorithm can run on the
//! same ledger deployment type.

use setchain_crypto::{sign, verify, Digest512, KeyPair, KeyRegistry, ProcessId, Signature};
use setchain_ledger::{TxData, TxId};

use crate::element::Element;
use crate::proofs::EpochProof;

/// Wire length of a hash-batch `⟨h, s, v⟩` (139 bytes, per the paper).
pub const HASH_BATCH_WIRE_LEN: usize = 139;

/// A compressed batch appended to the ledger by Compresschain.
///
/// The element and proof structures are carried explicitly (the simulation
/// does not re-serialize them) alongside `payload` — the real chunked-LZ77
/// frame produced from the materialized batch bytes. `compressed_size`
/// (frame length plus uncompressed proof bytes) is what the batch occupies
/// in blocks and on the wire, and receiving servers decompress `payload`
/// for real on delivery unless the "Compresschain light" ablation is on.
/// The payload is behind an `Arc`: the ledger clones transactions freely
/// (mempool, proposals, blocks), and those clones must not copy the frame.
#[derive(Clone, Debug)]
pub struct CompressedBatch {
    /// The server that built and appended the batch.
    pub origin: ProcessId,
    /// Per-origin batch sequence number (makes the transaction id unique).
    pub seq: u64,
    /// Elements in the batch, in collection order.
    pub elements: Vec<Element>,
    /// Epoch-proofs included in the batch.
    pub proofs: Vec<EpochProof>,
    /// The chunked-LZ77 frame of the materialized element payloads.
    pub payload: std::sync::Arc<Vec<u8>>,
    /// Size of the batch after compression, in bytes: the full shipped
    /// frame (chunk headers included) plus the proofs' wire size.
    pub compressed_size: u32,
    /// Size of the batch before compression, in bytes.
    pub original_size: u32,
}

impl CompressedBatch {
    /// Compression ratio achieved on this batch.
    pub fn ratio(&self) -> f64 {
        if self.compressed_size == 0 {
            return 1.0;
        }
        self.original_size as f64 / self.compressed_size as f64
    }
}

/// A hash-batch `⟨h, s, v⟩`: the hash of a batch, signed by a server.
#[derive(Clone, Copy, Debug)]
pub struct HashBatch {
    /// SHA-512 hash of the batch contents.
    pub hash: Digest512,
    /// The signing server.
    pub signer: ProcessId,
    /// Signature over the hash.
    pub signature: Signature,
}

impl HashBatch {
    /// Creates a hash-batch signed by `keys`.
    pub fn new(keys: &KeyPair, hash: Digest512) -> Self {
        HashBatch {
            hash,
            signer: keys.id,
            signature: sign(keys, hash.as_bytes()),
        }
    }

    /// The paper's `valid_hash(h, s, w)`: the signature must be a valid
    /// signature by `w` (a server of this deployment) over `h`.
    pub fn is_valid(&self, registry: &KeyRegistry, servers: usize) -> bool {
        self.signer.is_server()
            && self.signer.server_index() < servers
            && self.signature.signer == self.signer
            && verify(registry, self.hash.as_bytes(), &self.signature)
    }
}

/// A ledger transaction produced by a Setchain server.
#[derive(Clone, Debug)]
pub enum SetchainTx {
    /// A single element (Vanilla).
    Element(Element),
    /// An epoch-proof appended directly to the ledger (Vanilla).
    Proof(EpochProof),
    /// A compressed batch of elements and proofs (Compresschain).
    Compressed(CompressedBatch),
    /// A signed batch hash (Hashchain).
    HashBatch(HashBatch),
}

// Tags keep the id spaces of the four transaction kinds disjoint.
const TAG_ELEMENT: u128 = 1 << 120;
const TAG_PROOF: u128 = 2 << 120;
const TAG_COMPRESSED: u128 = 3 << 120;
const TAG_HASH_BATCH: u128 = 4 << 120;

impl TxData for SetchainTx {
    fn tx_id(&self) -> TxId {
        match self {
            SetchainTx::Element(e) => TxId(TAG_ELEMENT | u128::from(e.id.0)),
            SetchainTx::Proof(p) => {
                TxId(TAG_PROOF | (u128::from(p.epoch) << 64) | u128::from(p.signer.0))
            }
            SetchainTx::Compressed(b) => {
                TxId(TAG_COMPRESSED | (u128::from(b.origin.0) << 64) | u128::from(b.seq))
            }
            SetchainTx::HashBatch(hb) => {
                // Multiple servers append hash-batches for the same hash; the
                // signer keeps their transaction ids distinct.
                TxId(TAG_HASH_BATCH | (u128::from(hb.hash.short()) << 48) | u128::from(hb.signer.0))
            }
        }
    }

    fn wire_size(&self) -> usize {
        match self {
            SetchainTx::Element(e) => e.wire_size(),
            SetchainTx::Proof(p) => p.wire_size(),
            SetchainTx::Compressed(b) => b.compressed_size as usize + 24,
            SetchainTx::HashBatch(_) => HASH_BATCH_WIRE_LEN,
        }
    }
}

impl SetchainTx {
    /// True if this transaction is an element.
    pub fn is_element(&self) -> bool {
        matches!(self, SetchainTx::Element(_))
    }

    /// True if this transaction is an epoch-proof.
    pub fn is_proof(&self) -> bool {
        matches!(self, SetchainTx::Proof(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::ElementId;
    use crate::proofs::make_epoch_proof;
    use setchain_crypto::{sha512, KeyRegistry};

    fn registry() -> KeyRegistry {
        KeyRegistry::bootstrap(11, 4, 2)
    }

    #[test]
    fn tx_ids_are_distinct_across_kinds() {
        let reg = registry();
        let client = reg.lookup(ProcessId::client(0)).unwrap();
        let server = reg.lookup(ProcessId::server(0)).unwrap();
        let e = Element::new(&client, ElementId::new(0, 5), 438, 1);
        let proof = make_epoch_proof(&server, 5, &[e]);
        let hb = HashBatch::new(&server, sha512(b"batch"));
        let cb = CompressedBatch {
            origin: server.id,
            seq: 5,
            elements: vec![e],
            proofs: vec![],
            payload: std::sync::Arc::new(Vec::new()),
            compressed_size: 100,
            original_size: 300,
        };
        let ids = [
            SetchainTx::Element(e).tx_id(),
            SetchainTx::Proof(proof).tx_id(),
            SetchainTx::Compressed(cb).tx_id(),
            SetchainTx::HashBatch(hb).tx_id(),
        ];
        for i in 0..ids.len() {
            for j in i + 1..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn wire_sizes_match_paper_constants() {
        let reg = registry();
        let client = reg.lookup(ProcessId::client(0)).unwrap();
        let server = reg.lookup(ProcessId::server(0)).unwrap();
        let e = Element::new(&client, ElementId::new(0, 1), 438, 1);
        assert_eq!(SetchainTx::Element(e).wire_size(), 438);
        let proof = make_epoch_proof(&server, 1, &[e]);
        assert_eq!(SetchainTx::Proof(proof).wire_size(), 139);
        let hb = HashBatch::new(&server, sha512(b"x"));
        assert_eq!(SetchainTx::HashBatch(hb).wire_size(), 139);
        let cb = CompressedBatch {
            origin: server.id,
            seq: 0,
            elements: vec![e],
            proofs: vec![],
            payload: std::sync::Arc::new(Vec::new()),
            compressed_size: 160,
            original_size: 438,
        };
        assert_eq!(SetchainTx::Compressed(cb.clone()).wire_size(), 184);
        assert!((cb.ratio() - 438.0 / 160.0).abs() < 1e-9);
    }

    #[test]
    fn hash_batch_validation() {
        let reg = registry();
        let server = reg.lookup(ProcessId::server(2)).unwrap();
        let hb = HashBatch::new(&server, sha512(b"contents"));
        assert!(hb.is_valid(&reg, 4));
        // Signer outside the deployment's server set.
        assert!(!hb.is_valid(&reg, 2));
        // Forged signature.
        let mut forged = hb;
        forged.signature = Signature::forged(server.id);
        assert!(!forged.is_valid(&reg, 4));
        // A client cannot produce a valid hash-batch.
        let client = reg.lookup(ProcessId::client(0)).unwrap();
        let hb_client = HashBatch::new(&client, sha512(b"contents"));
        assert!(!hb_client.is_valid(&reg, 4));
        // Mismatched claimed signer.
        let other = reg.lookup(ProcessId::server(3)).unwrap();
        let mut mismatched = HashBatch::new(&server, sha512(b"contents"));
        mismatched.signer = other.id;
        assert!(!mismatched.is_valid(&reg, 4));
    }

    #[test]
    fn same_hash_different_signers_have_distinct_tx_ids() {
        let reg = registry();
        let s0 = reg.lookup(ProcessId::server(0)).unwrap();
        let s1 = reg.lookup(ProcessId::server(1)).unwrap();
        let h = sha512(b"same batch");
        let a = SetchainTx::HashBatch(HashBatch::new(&s0, h));
        let b = SetchainTx::HashBatch(HashBatch::new(&s1, h));
        assert_ne!(a.tx_id(), b.tx_id());
    }

    #[test]
    fn kind_predicates() {
        let reg = registry();
        let client = reg.lookup(ProcessId::client(0)).unwrap();
        let server = reg.lookup(ProcessId::server(0)).unwrap();
        let e = Element::new(&client, ElementId::new(0, 1), 100, 1);
        assert!(SetchainTx::Element(e).is_element());
        assert!(!SetchainTx::Element(e).is_proof());
        let p = make_epoch_proof(&server, 1, &[e]);
        assert!(SetchainTx::Proof(p).is_proof());
    }

    #[test]
    fn degenerate_compressed_batch_ratio() {
        let cb = CompressedBatch {
            origin: ProcessId::server(0),
            seq: 0,
            elements: vec![],
            proofs: vec![],
            payload: std::sync::Arc::new(Vec::new()),
            compressed_size: 0,
            original_size: 0,
        };
        assert_eq!(cb.ratio(), 1.0);
    }
}
