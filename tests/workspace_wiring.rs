//! Workspace-wiring smoke tests: exercise at least one public entry point of
//! every crate in the workspace, through the crate-root re-exports, so a
//! broken re-export or inter-crate dependency fails tier-1 directly instead
//! of only breaking examples (which `cargo test` does not run).

use setchain::{Algorithm, Element, ElementId, SetchainConfig, SetchainState};
use setchain_compress::{compress, decompress};
use setchain_crypto::{sha256, sign, verify, KeyPair, KeyRegistry, MerkleTree, ProcessId};
use setchain_exec::{validate_and_execute, Address, ExecutionConfig, Transaction, WorldState};
use setchain_ledger::Mempool;
use setchain_simnet::{SimDuration, SimTime};
use setchain_workload::{analytical_throughput, AnalysisParams, ArbitrumWorkload, Scenario};

#[test]
fn crypto_entry_points() {
    // Hashing is deterministic and input-sensitive.
    assert_eq!(sha256(b"setchain"), sha256(b"setchain"));
    assert_ne!(sha256(b"setchain").0, sha256(b"setchain!").0);

    // Sign with a registered key, verify through the registry.
    let registry = KeyRegistry::bootstrap(7, 4, 2);
    let pair = registry.lookup(ProcessId::server(0)).expect("server key");
    let sig = sign(&pair, b"epoch 1");
    assert!(verify(&registry, b"epoch 1", &sig));
    assert!(!verify(&registry, b"epoch 2", &sig));

    // Merkle proofs verify against the root.
    let items: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 8]).collect();
    let tree = MerkleTree::build(&items);
    let root = tree.root();
    assert!(tree.prove(3).verify(&items[3], &root));
}

#[test]
fn compress_entry_points() {
    let data: Vec<u8> = b"abcabcabcabc".repeat(16);
    let packed = compress(&data);
    assert!(packed.len() < data.len(), "repetitive input must shrink");
    assert_eq!(decompress(&packed).expect("roundtrip"), data);
}

#[test]
fn simnet_entry_points() {
    let t = SimTime::from_millis(1_500);
    assert!(t < SimTime::from_secs(2));
    assert_eq!(SimDuration::from_micros(2_000), SimDuration::from_millis(2));
}

#[test]
fn ledger_entry_points() {
    // SetchainTx implements the ledger's TxData trait: this exercises the
    // setchain <-> ledger boundary as well as the mempool API.
    let mempool: Mempool<setchain::SetchainTx> = Mempool::new(16, 4096);
    assert!(mempool.is_empty());
    assert_eq!(mempool.len(), 0);
}

#[test]
fn setchain_entry_points() {
    assert_eq!(Algorithm::ALL.len(), 3);
    assert_eq!(Algorithm::Hashchain.name(), "Hashchain");
    assert_eq!(Algorithm::Hashchain.index(), 2);
    assert!(!Algorithm::Vanilla.uses_collector());

    // The variant-agnostic application API: one factory builds any variant
    // behind the object-safe `SetchainApp` trait.
    let registry = KeyRegistry::bootstrap(5, 4, 1);
    let factory = setchain::AppFactory::new(
        Algorithm::Compresschain,
        registry.clone(),
        SetchainConfig::new(4),
    );
    let app: Box<dyn setchain::SetchainApp> = factory.build(
        registry.lookup(ProcessId::server(0)).expect("server key"),
        setchain::SetchainTrace::new(),
        setchain::ServerByzMode::Correct,
    );
    assert_eq!(app.algorithm(), Algorithm::Compresschain);
    assert_eq!(app.state().epoch(), 0);

    // f + 1 proofs form a quorum, with f = ⌊(n−1)/2⌋.
    let config = SetchainConfig::new(10);
    assert_eq!(config.proof_quorum(), 5);

    // Epoch bookkeeping through the public state API.
    let keys = KeyPair::derive(ProcessId::client(0), 42);
    let elements: Vec<Element> = (0..4)
        .map(|i| Element::new(&keys, ElementId::new(0, i), 64, i))
        .collect();
    let mut state = SetchainState::new();
    let epoch = state.record_epoch(elements);
    assert_eq!(epoch, 1);
    assert_eq!(state.epoch(), 1);
    assert!(state.check_consistent_sets());
    assert!(state.check_unique_epoch());
}

#[test]
fn exec_entry_points() {
    let mut state = WorldState::new();
    state.credit(Address(1), 1_000);
    let supply = state.total_supply();
    let txs = [Transaction::transfer(Address(1), Address(2), 250, 1, 0)];
    let receipts = validate_and_execute(&mut state, &txs, &ExecutionConfig::default());
    assert_eq!(receipts.applied, 1);
    assert_eq!(receipts.void, 0);
    assert_eq!(state.total_supply(), supply, "value is conserved");
    assert_eq!(state.balance(Address(2)), 250);
}

#[test]
fn workload_entry_points() {
    let scenario = Scenario::base(Algorithm::Hashchain).with_servers(10);
    assert_eq!(scenario.setchain_f(), 4, "f = ⌊(n−1)/2⌋");
    assert_eq!(scenario.setchain_config().proof_quorum(), 5);

    // The deployment builder carries scenario knobs fluently.
    let builder = setchain_workload::Deployment::builder(Algorithm::Vanilla)
        .servers(4)
        .rate(100.0)
        .seed(3);
    assert_eq!(builder.scenario().servers, 4);

    // The Appendix D analytical model ranks the algorithms as the paper does.
    let params = AnalysisParams::default();
    let vanilla = analytical_throughput(Algorithm::Vanilla, &params);
    let compresschain = analytical_throughput(Algorithm::Compresschain, &params);
    let hashchain = analytical_throughput(Algorithm::Hashchain, &params);
    assert!(vanilla > 0.0);
    assert!(compresschain > vanilla);
    assert!(hashchain > compresschain);

    // The synthetic workload produces elements for a registered client.
    let registry = KeyRegistry::bootstrap(3, 1, 1);
    let mut workload = ArbitrumWorkload::for_client(&registry, ProcessId::client(0), 7);
    let elements: Vec<Element> = workload.take(3);
    assert_eq!(elements.len(), 3);
}

#[test]
fn bench_entry_points() {
    let ctx = setchain_bench::ExperimentCtx::from_env();
    assert!(ctx.injection_secs() >= 5);
}
