//! The ledger node: mempool, gossip, Tendermint-style consensus and the
//! ABCI application driver, all in one simulated process.
//!
//! # Consensus
//!
//! A simplified Tendermint: for each height the proposer (round-robin over
//! the validator set) reaps transactions from its mempool and broadcasts a
//! proposal; validators prevote for the first valid proposal they see for the
//! round, precommit once they observe a 2f+1 prevote quorum, and commit once
//! they observe a 2f+1 precommit quorum. A round timeout advances the round
//! (new proposer) when a proposer is silent. Precommit signatures double as a
//! commit certificate used by catch-up block sync, so a node that missed the
//! consensus exchange can still obtain and verify committed blocks
//! (Property 9, Ledger-Add-Eventual-Notify). The full Tendermint
//! locking/unlocking rules are *not* implemented; the simplification is safe
//! for the fault scenarios exercised here (silent validators, proposer
//! equivocation in the proposal phase, vote withholding) and is called out in
//! DESIGN.md.
//!
//! # Timing
//!
//! After committing height `h` at time `t`, every validator arms a timer for
//! `t + block_interval` and the next proposer proposes when it fires. With
//! the default 1.25 s interval this yields the paper's ~0.8 blocks/s.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use setchain_crypto::{
    sign_with, verify_batch, HmacSha512Key, KeyPair, KeyRegistry, ProcessId, SigVerifier, Signature,
};
use setchain_simnet::{Context, Process, SimDuration, TimerToken};

use crate::app::{AppCtx, Application};
use crate::byzantine::ByzMode;
use crate::mempool::Mempool;
use crate::messages::{
    certificate_sign_bytes, proposal_sign_bytes, vote_sign_bytes, NetMsg, VoteKind,
};
use crate::trace::{BlockSummary, LedgerTrace};
use crate::types::{Block, BlockId, LedgerConfig, TxData, TxId};

/// Application timers are namespaced above this bit so they never collide
/// with the node's internal timers.
pub const APP_TIMER_BASE: u64 = 1 << 63;

const TIMER_KIND_SHIFT: u64 = 56;
const TIMER_GOSSIP: u64 = 1 << TIMER_KIND_SHIFT;
const TIMER_START_HEIGHT: u64 = 2 << TIMER_KIND_SHIFT;
const TIMER_ROUND_TIMEOUT: u64 = 3 << TIMER_KIND_SHIFT;
const TIMER_PAYLOAD_MASK: u64 = (1 << TIMER_KIND_SHIFT) - 1;

/// Counters exposed for experiment reports and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Blocks this node has committed.
    pub blocks_committed: u64,
    /// Transactions this node has committed (including empty blocks).
    pub txs_committed: u64,
    /// Transactions rejected by the application's `check_tx`.
    pub txs_rejected: u64,
    /// Transactions the mempool refused because their id was already pending
    /// or committed.
    pub mempool_rejected_duplicate: u64,
    /// Transactions shed because the mempool held `mempool_max_txs` entries.
    /// Reject-newest: the arriving transaction is dropped, queued ones stay.
    pub mempool_rejected_full_count: u64,
    /// Transactions shed because the mempool held `mempool_max_bytes` bytes.
    pub mempool_rejected_full_bytes: u64,
    /// Proposals this node created.
    pub proposals_made: u64,
    /// Round timeouts experienced.
    pub round_timeouts: u64,
    /// Block-sync responses applied.
    pub synced_blocks: u64,
    /// Future-height consensus messages buffered for replay (nonzero only
    /// when this node fell behind and caught back up in time to vote).
    pub future_buffered: u64,
}

impl NodeStats {
    /// Total transactions the mempool refused, across all causes. Every
    /// shed transaction is attributed to exactly one of the per-cause
    /// counters; nothing is dropped silently.
    pub fn mempool_rejected(&self) -> u64 {
        self.mempool_rejected_duplicate
            + self.mempool_rejected_full_count
            + self.mempool_rejected_full_bytes
    }
}

/// How many heights ahead of our own a proposal or vote may be and still be
/// buffered for replay. One height is enough to re-enter consensus after a
/// catch-up; a few more absorb commit jitter while we sync.
const MAX_FUTURE_HEIGHTS: u64 = 4;

type M<A> = NetMsg<<A as Application>::Tx, <A as Application>::Msg>;

/// A ledger validator node running an [`Application`].
pub struct LedgerNode<A: Application> {
    id: ProcessId,
    config: LedgerConfig,
    registry: KeyRegistry,
    byz: ByzMode,
    app: A,
    trace: LedgerTrace,

    mempool: Mempool<A::Tx>,
    pending_gossip: Vec<A::Tx>,
    /// Validator ids of this deployment, resolved once from the config.
    validators: Vec<ProcessId>,
    /// `validators` minus this node, resolved once (the broadcast fan-out
    /// set; rebuilding it per broadcast allocated on every vote).
    peers: Vec<ProcessId>,
    /// Reused buffer for transactions submitted during an application
    /// callback (see `with_app`).
    submitted_scratch: Vec<A::Tx>,
    /// Reused buffer for the application messages of one coalesced
    /// delivery batch (see `Process::on_messages`).
    app_batch: Vec<(ProcessId, A::Msg)>,
    /// This node's own HMAC key schedule, so signing a vote/proposal does
    /// not rebuild the key pads per signature.
    own_key: HmacSha512Key,
    /// Per-signer verification schedules for votes and proposals.
    verifier: SigVerifier,

    // Consensus state for the current height.
    height: u64,
    round: u32,
    /// First proposal block id seen per (height, round) — prevents double
    /// prevotes under equivocation.
    first_proposal: HashMap<(u64, u32), BlockId>,
    /// Proposed blocks by (height, block id), kept until the height commits.
    proposal_store: HashMap<(u64, BlockId), Block<A::Tx>>,
    prevotes: HashMap<(u64, u32, BlockId), HashSet<ProcessId>>,
    precommits: HashMap<(u64, BlockId), HashSet<ProcessId>>,
    precommit_sigs: HashMap<(u64, BlockId), Vec<Signature>>,
    voted_prevote: HashSet<(u64, u32)>,
    voted_precommit: HashSet<u64>,

    /// Committed blocks with their commit certificates, by height.
    committed: BTreeMap<u64, (Block<A::Tx>, Vec<Signature>)>,
    /// Highest height seen referenced by any peer (used to trigger sync).
    max_seen_height: u64,
    /// Proposals and votes for heights we have not reached yet, replayed
    /// when their height starts. Without this buffer a node that fell
    /// behind (partition heal, restart) can never rejoin voting: by the
    /// time block sync delivers height `h`, the messages for `h + 1` have
    /// already flown past, so it trails the cluster through sync forever.
    /// Bounded to [`MAX_FUTURE_HEIGHTS`] heights and a per-height cap;
    /// entries are verified by the normal handlers on replay.
    future_msgs: BTreeMap<u64, Vec<(ProcessId, M<A>)>>,

    stats: NodeStats,
}

impl<A: Application> LedgerNode<A> {
    /// Creates a node.
    ///
    /// `keys` must be registered in `registry`; every validator of the run
    /// shares the same `registry` and `trace`.
    pub fn new(
        id: ProcessId,
        config: LedgerConfig,
        keys: KeyPair,
        registry: KeyRegistry,
        app: A,
        trace: LedgerTrace,
        byz: ByzMode,
    ) -> Self {
        assert_eq!(keys.id, id, "key pair does not belong to this node");
        let mempool = Mempool::new(config.mempool_max_txs, config.mempool_max_bytes);
        let validators = config.validator_ids();
        let peers: Vec<ProcessId> = validators.iter().copied().filter(|p| *p != id).collect();
        LedgerNode {
            id,
            config,
            registry,
            byz,
            app,
            trace,
            mempool,
            pending_gossip: Vec::new(),
            validators,
            peers,
            submitted_scratch: Vec::new(),
            app_batch: Vec::new(),
            own_key: HmacSha512Key::new(&keys.secret.0),
            verifier: SigVerifier::new(),
            height: 1,
            round: 0,
            first_proposal: HashMap::new(),
            proposal_store: HashMap::new(),
            prevotes: HashMap::new(),
            precommits: HashMap::new(),
            precommit_sigs: HashMap::new(),
            voted_prevote: HashSet::new(),
            voted_precommit: HashSet::new(),
            committed: BTreeMap::new(),
            max_seen_height: 0,
            future_msgs: BTreeMap::new(),
            stats: NodeStats::default(),
        }
    }

    /// The application instance running on this node.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable access to the application (post-run inspection).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Current consensus height (next block to commit).
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Node statistics.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Number of transactions currently pending in the mempool.
    pub fn mempool_len(&self) -> usize {
        self.mempool.len()
    }

    /// Peak mempool occupancy.
    pub fn mempool_peak(&self) -> usize {
        self.mempool.peak_len()
    }

    /// The committed block at `height`, if this node has committed it.
    pub fn committed_block(&self, height: u64) -> Option<&Block<A::Tx>> {
        self.committed.get(&height).map(|(b, _)| b)
    }

    /// Heights committed so far, in order.
    pub fn committed_heights(&self) -> Vec<u64> {
        self.committed.keys().copied().collect()
    }

    fn is_proposer(&self, height: u64, round: u32) -> bool {
        self.config.proposer(height, round) == self.id
    }

    // ------------------------------------------------------------------
    // Application plumbing
    // ------------------------------------------------------------------

    /// Runs an application callback and processes the transactions it
    /// submitted (CheckTx → mempool → gossip queue → trace).
    fn with_app<F>(&mut self, ctx: &mut Context<'_, M<A>>, f: F)
    where
        F: FnOnce(&mut A, &mut AppCtx<'_, '_, '_, A::Tx, A::Msg>),
    {
        let mut submitted = std::mem::take(&mut self.submitted_scratch);
        debug_assert!(submitted.is_empty());
        {
            let mut app_ctx = AppCtx {
                node_id: self.id,
                sim: ctx,
                submitted: &mut submitted,
            };
            f(&mut self.app, &mut app_ctx);
        }
        for tx in submitted.drain(..) {
            self.submit_local(tx, ctx);
        }
        self.submitted_scratch = submitted;
    }

    /// Local transaction submission path (the ledger `append` endpoint).
    fn submit_local(&mut self, tx: A::Tx, ctx: &mut Context<'_, M<A>>) {
        if !self.app.check_tx(&tx) {
            self.stats.txs_rejected += 1;
            return;
        }
        let id = tx.tx_id();
        match self.mempool.push(tx.clone()) {
            Ok(()) => {
                self.trace.record_mempool_arrival(id, self.id, ctx.now());
                if !self.byz.is_silent() {
                    self.pending_gossip.push(tx);
                }
            }
            Err(cause) => self.note_mempool_rejection(cause),
        }
    }

    /// Attributes a mempool rejection to its per-cause counter. Shedding is
    /// reject-newest and never silent: duplicates are the dedup working as
    /// intended, the `full_*` causes mean the node is overloaded and the
    /// arriving transaction was dropped before consensus ever saw it.
    fn note_mempool_rejection(&mut self, cause: crate::mempool::MempoolRejection) {
        use crate::mempool::MempoolRejection;
        match cause {
            MempoolRejection::Duplicate => self.stats.mempool_rejected_duplicate += 1,
            MempoolRejection::FullByCount => self.stats.mempool_rejected_full_count += 1,
            MempoolRejection::FullByBytes => self.stats.mempool_rejected_full_bytes += 1,
        }
    }

    // ------------------------------------------------------------------
    // Consensus steps
    // ------------------------------------------------------------------

    fn schedule_start_height(&self, height: u64, ctx: &mut Context<'_, M<A>>) {
        ctx.set_timer(
            self.config.block_interval,
            TIMER_START_HEIGHT | (height & TIMER_PAYLOAD_MASK),
        );
    }

    fn schedule_round_timeout(&self, height: u64, round: u32, ctx: &mut Context<'_, M<A>>) {
        let payload = ((height & 0xFF_FFFF_FFFF) << 16) | u64::from(round & 0xFFFF);
        ctx.set_timer(self.config.round_timeout, TIMER_ROUND_TIMEOUT | payload);
    }

    fn start_round(&mut self, ctx: &mut Context<'_, M<A>>) {
        if self.byz.is_silent() {
            return;
        }
        self.schedule_round_timeout(self.height, self.round, ctx);
        if self.is_proposer(self.height, self.round) {
            self.propose(ctx);
        }
    }

    fn propose(&mut self, ctx: &mut Context<'_, M<A>>) {
        let txs = self.mempool.reap(self.config.max_block_bytes);
        let block = Block {
            height: self.height,
            proposer: self.id,
            proposed_at: ctx.now(),
            txs,
        };
        self.stats.proposals_made += 1;

        if self.byz == ByzMode::EquivocatingProposer && block.len() >= 2 {
            // Send two conflicting blocks: one with all transactions, one
            // with the order of the first two swapped, split across peers.
            // Each variant is built and signed exactly once and Arc-shared
            // across its half of the recipients.
            let mut alt = block.clone();
            alt.txs.swap(0, 1);
            let alt_signature = sign_with(
                &self.own_key,
                self.id,
                &proposal_sign_bytes(self.height, self.round, &alt.id()),
            );
            let signature = sign_with(
                &self.own_key,
                self.id,
                &proposal_sign_bytes(self.height, self.round, &block.id()),
            );
            let alt_msg = Arc::new(NetMsg::Proposal {
                height: self.height,
                round: self.round,
                block: alt,
                signature: alt_signature,
            });
            let primary_msg = Arc::new(NetMsg::Proposal {
                height: self.height,
                round: self.round,
                block,
                signature,
            });
            let half = self.peers.len() / 2;
            for (i, peer) in self.peers.iter().enumerate() {
                let m = if i < half { &primary_msg } else { &alt_msg };
                ctx.send_shared(*peer, Arc::clone(m));
            }
            // Process our own copy of the primary block.
            ctx.send_shared(self.id, primary_msg);
            return;
        }

        let signature = sign_with(
            &self.own_key,
            self.id,
            &proposal_sign_bytes(self.height, self.round, &block.id()),
        );
        let msg = Arc::new(NetMsg::Proposal {
            height: self.height,
            round: self.round,
            block,
            signature,
        });
        // Broadcast to peers and loop back to ourselves so the proposal is
        // processed through the same code path everywhere. One shared
        // payload serves every recipient.
        for peer in &self.peers {
            ctx.send_shared(*peer, Arc::clone(&msg));
        }
        ctx.send_shared(self.id, msg);
    }

    fn broadcast_vote(
        &mut self,
        kind: VoteKind,
        height: u64,
        round: u32,
        block_id: BlockId,
        ctx: &mut Context<'_, M<A>>,
    ) {
        if self.byz.is_silent() {
            return;
        }
        if self.byz == ByzMode::WithholdPrecommit && kind == VoteKind::Precommit {
            return;
        }
        let bytes = match kind {
            VoteKind::Prevote => vote_sign_bytes(kind, height, round, &block_id),
            // Precommit signatures double as commit-certificate entries, so
            // they sign the round-independent certificate bytes.
            VoteKind::Precommit => certificate_sign_bytes(height, &block_id),
        };
        let signature = sign_with(&self.own_key, self.id, &bytes);
        let msg = Arc::new(NetMsg::Vote {
            kind,
            height,
            round,
            block_id,
            voter: self.id,
            signature,
        });
        for peer in &self.peers {
            ctx.send_shared(*peer, Arc::clone(&msg));
        }
        ctx.send_shared(self.id, msg);
    }

    fn on_proposal(
        &mut self,
        height: u64,
        round: u32,
        block: Block<A::Tx>,
        signature: Signature,
        ctx: &mut Context<'_, M<A>>,
    ) {
        if height < self.height {
            return; // stale
        }
        self.note_peer_height(height, signature.signer, ctx);
        if height > self.height {
            return; // we will catch up through sync
        }
        let expected_proposer = self.config.proposer(height, round);
        if signature.signer != expected_proposer || block.proposer != expected_proposer {
            return;
        }
        let block_id = block.id();
        if !self.verifier.verify(
            &self.registry,
            &proposal_sign_bytes(height, round, &block_id),
            &signature,
        ) {
            return;
        }
        ctx.consume_cpu(self.config.sig_verify_cost);
        // Validate transactions (CheckTx on proposed content) and charge CPU
        // proportional to the block payload.
        let payload_kib = (block.payload_bytes() / 1024) as u64;
        ctx.consume_cpu(SimDuration::from_micros(
            self.config.block_validate_cost_per_kib.as_micros() * payload_kib,
        ));
        if !block.txs.iter().all(|tx| self.app.check_tx(tx)) {
            return; // invalid block: do not prevote
        }
        if round > self.round {
            // The network has moved on; follow it.
            self.round = round;
        }
        self.proposal_store.insert((height, block_id), block);
        // Prevote only for the first proposal seen in this round.
        let first = *self
            .first_proposal
            .entry((height, round))
            .or_insert(block_id);
        if first == block_id && self.voted_prevote.insert((height, round)) {
            self.broadcast_vote(VoteKind::Prevote, height, round, block_id, ctx);
        }
        self.try_advance(height, round, block_id, ctx);
    }

    // The six vote fields arrive pre-destructured from `NetMsg::Vote`;
    // re-bundling them into a struct here would just mirror the message type.
    #[allow(clippy::too_many_arguments)]
    fn on_vote(
        &mut self,
        kind: VoteKind,
        height: u64,
        round: u32,
        block_id: BlockId,
        voter: ProcessId,
        signature: Signature,
        ctx: &mut Context<'_, M<A>>,
    ) {
        if height < self.height {
            return;
        }
        self.note_peer_height(height, voter, ctx);
        if height > self.height {
            return;
        }
        if signature.signer != voter || !self.validators.contains(&voter) {
            return;
        }
        let bytes = match kind {
            VoteKind::Prevote => vote_sign_bytes(kind, height, round, &block_id),
            VoteKind::Precommit => certificate_sign_bytes(height, &block_id),
        };
        if !self.verifier.verify(&self.registry, &bytes, &signature) {
            return;
        }
        ctx.consume_cpu(self.config.sig_verify_cost);
        match kind {
            VoteKind::Prevote => {
                self.prevotes
                    .entry((height, round, block_id))
                    .or_default()
                    .insert(voter);
            }
            VoteKind::Precommit => {
                let newly = self
                    .precommits
                    .entry((height, block_id))
                    .or_default()
                    .insert(voter);
                if newly {
                    self.precommit_sigs
                        .entry((height, block_id))
                        .or_default()
                        .push(signature);
                }
            }
        }
        self.try_advance(height, round, block_id, ctx);
    }

    /// Checks quorum conditions for (height, round, block id) and advances:
    /// prevote quorum → precommit; precommit quorum → commit.
    fn try_advance(
        &mut self,
        height: u64,
        round: u32,
        block_id: BlockId,
        ctx: &mut Context<'_, M<A>>,
    ) {
        if height != self.height {
            return;
        }
        let quorum = self.config.quorum();
        let have_block = self.proposal_store.contains_key(&(height, block_id));

        let prevote_count = self
            .prevotes
            .get(&(height, round, block_id))
            .map(|s| s.len())
            .unwrap_or(0);
        if prevote_count >= quorum && have_block && self.voted_precommit.insert(height) {
            self.broadcast_vote(VoteKind::Precommit, height, round, block_id, ctx);
        }

        let precommit_count = self
            .precommits
            .get(&(height, block_id))
            .map(|s| s.len())
            .unwrap_or(0);
        if precommit_count >= quorum {
            if have_block {
                // Take the block out instead of cloning it: commit_block
                // clears all per-height consensus state right after anyway.
                let block = self
                    .proposal_store
                    .remove(&(height, block_id))
                    .expect("checked above");
                let cert = self
                    .precommit_sigs
                    .get(&(height, block_id))
                    .cloned()
                    .unwrap_or_default();
                self.commit_block(block, cert, ctx);
            } else if let Some(voters) = self.precommits.get(&(height, block_id)) {
                // We saw a commit quorum but missed the proposal: fetch the
                // block from one of the precommitters.
                if let Some(peer) = voters.iter().find(|p| **p != self.id) {
                    ctx.send(*peer, NetMsg::BlockSyncRequest { height });
                }
            }
        }
    }

    fn commit_block(
        &mut self,
        block: Block<A::Tx>,
        certificate: Vec<Signature>,
        ctx: &mut Context<'_, M<A>>,
    ) {
        debug_assert_eq!(block.height, self.height);
        let now = ctx.now();
        let tx_ids: Vec<TxId> = block.txs.iter().map(|t| t.tx_id()).collect();
        for id in &tx_ids {
            self.trace.record_commit(*id, block.height, now);
        }
        self.trace.record_block(BlockSummary {
            height: block.height,
            committed_at: now,
            txs: block.len(),
            bytes: block.payload_bytes(),
            proposer: block.proposer,
        });
        self.mempool.remove_committed(tx_ids.iter());
        self.stats.blocks_committed += 1;
        self.stats.txs_committed += block.len() as u64;

        // Notify the application (new_block / FinalizeBlock). The block is a
        // local here, so the application borrows it directly — no copy.
        self.with_app(ctx, |app, app_ctx| app.finalize_block(&block, app_ctx));

        self.committed.insert(block.height, (block, certificate));

        // Clean up per-height consensus state and move to the next height.
        let h = self.height;
        self.first_proposal.retain(|(hh, _), _| *hh > h);
        self.proposal_store.retain(|(hh, _), _| *hh > h);
        self.prevotes.retain(|(hh, _, _), _| *hh > h);
        self.precommits.retain(|(hh, _), _| *hh > h);
        self.precommit_sigs.retain(|(hh, _), _| *hh > h);
        self.voted_prevote.retain(|(hh, _)| *hh > h);
        self.voted_precommit.retain(|hh| *hh > h);

        self.height += 1;
        self.round = 0;
        if !self.byz.is_silent() {
            self.schedule_start_height(self.height, ctx);
        }
        // Replay consensus messages that arrived while this height was still
        // in our future. A perpetually-lagging node breaks out of the
        // sync-one-behind treadmill here: the buffered proposal and
        // precommit quorum for the new height let it commit (or even vote)
        // without waiting to hear about the height after it.
        self.future_msgs.retain(|h, _| *h >= self.height);
        if let Some(msgs) = self.future_msgs.remove(&self.height) {
            for (from, msg) in msgs {
                self.handle_consensus_msg(from, msg, ctx);
            }
        }
    }

    /// Tracks the highest height peers reference and requests sync when we
    /// are behind.
    fn note_peer_height(&mut self, height: u64, peer: ProcessId, ctx: &mut Context<'_, M<A>>) {
        if height > self.max_seen_height {
            self.max_seen_height = height;
        }
        if height > self.height && peer != self.id && !self.byz.is_silent() {
            ctx.send(
                peer,
                NetMsg::BlockSyncRequest {
                    height: self.height,
                },
            );
        }
    }

    fn on_sync_request(&mut self, from: ProcessId, height: u64, ctx: &mut Context<'_, M<A>>) {
        if self.byz.is_silent() {
            return;
        }
        if let Some((block, cert)) = self.committed.get(&height) {
            ctx.send(
                from,
                NetMsg::BlockSyncResponse {
                    block: block.clone(),
                    certificate: cert.clone(),
                },
            );
        }
    }

    fn on_sync_response(
        &mut self,
        block: Block<A::Tx>,
        certificate: Vec<Signature>,
        ctx: &mut Context<'_, M<A>>,
    ) {
        if block.height != self.height {
            return;
        }
        // Verify the commit certificate: 2f+1 valid signatures from distinct
        // validators over (height, block id). All entries sign the same
        // bytes, so the batched verifier shares the per-signer HMAC setup.
        let block_id = block.id();
        let bytes = certificate_sign_bytes(block.height, &block_id);
        let verdicts = verify_batch(
            &self.registry,
            certificate.iter().map(|sig| (bytes.as_slice(), sig)),
        );
        let mut signers: HashSet<ProcessId> = HashSet::new();
        for (sig, ok) in certificate.iter().zip(verdicts) {
            if ok && self.validators.contains(&sig.signer) {
                signers.insert(sig.signer);
            }
        }
        ctx.consume_cpu(self.config.sig_verify_cost * certificate.len() as u64);
        if signers.len() < self.config.quorum() {
            return;
        }
        if !block.txs.iter().all(|tx| self.app.check_tx(tx)) {
            // A certificate quorum on an invalid block means more than f
            // faults; refuse to apply it.
            return;
        }
        self.stats.synced_blocks += 1;
        self.commit_block(block, certificate, ctx);
        // If still behind, keep pulling from any peer we know is ahead.
        if self.max_seen_height > self.height {
            if let Some(peer) = self.peers.first().copied() {
                ctx.send(
                    peer,
                    NetMsg::BlockSyncRequest {
                        height: self.height,
                    },
                );
            }
        }
    }

    /// Dispatches one non-application message (consensus, gossip, sync).
    fn handle_consensus_msg(&mut self, from: ProcessId, msg: M<A>, ctx: &mut Context<'_, M<A>>) {
        // Proposals and votes for a height we have not reached yet cannot be
        // processed in place; buffer a bounded window of them for replay so
        // a node that is catching up can vote at the first height it reaches
        // in time. They still count as peer-height sightings, which is what
        // triggers the catch-up sync in the first place.
        let future_height = match &msg {
            NetMsg::Proposal { height, .. } | NetMsg::Vote { height, .. }
                if *height > self.height =>
            {
                Some(*height)
            }
            _ => None,
        };
        if let Some(h) = future_height {
            self.note_peer_height(h, from, ctx);
            if h <= self.height + MAX_FUTURE_HEIGHTS {
                let slot = self.future_msgs.entry(h).or_default();
                // Cap against a flooding peer: one proposal and two votes
                // per validator is what a height legitimately produces.
                if slot.len() < 4 * self.validators.len() {
                    slot.push((from, msg));
                    self.stats.future_buffered += 1;
                }
            }
            return;
        }
        match msg {
            NetMsg::Proposal {
                height,
                round,
                block,
                signature,
            } => self.on_proposal(height, round, block, signature, ctx),
            NetMsg::Vote {
                kind,
                height,
                round,
                block_id,
                voter,
                signature,
            } => self.on_vote(kind, height, round, block_id, voter, signature, ctx),
            NetMsg::TxGossip { txs } => {
                for tx in txs {
                    if !self.app.check_tx(&tx) {
                        self.stats.txs_rejected += 1;
                        continue;
                    }
                    let id = tx.tx_id();
                    match self.mempool.push(tx) {
                        Ok(()) => self.trace.record_mempool_arrival(id, self.id, ctx.now()),
                        Err(cause) => self.note_mempool_rejection(cause),
                    }
                }
            }
            NetMsg::BlockSyncRequest { height } => self.on_sync_request(from, height, ctx),
            NetMsg::BlockSyncResponse { block, certificate } => {
                self.on_sync_response(block, certificate, ctx)
            }
            NetMsg::App(_) => unreachable!("application messages are routed by the caller"),
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn on_internal_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, M<A>>) {
        let kind = token & !TIMER_PAYLOAD_MASK;
        let payload = token & TIMER_PAYLOAD_MASK;
        match kind {
            TIMER_GOSSIP => {
                if !self.pending_gossip.is_empty() && !self.byz.is_silent() {
                    let txs = std::mem::take(&mut self.pending_gossip);
                    let msg = Arc::new(NetMsg::TxGossip { txs });
                    for peer in &self.peers {
                        ctx.send_shared(*peer, Arc::clone(&msg));
                    }
                }
                ctx.set_timer(self.config.gossip_interval, TIMER_GOSSIP);
            }
            TIMER_START_HEIGHT if payload == self.height && self.round == 0 => {
                self.start_round(ctx);
            }
            TIMER_START_HEIGHT => {}
            TIMER_ROUND_TIMEOUT => {
                let height = payload >> 16;
                let round = (payload & 0xFFFF) as u32;
                if height == self.height && round == self.round {
                    self.stats.round_timeouts += 1;
                    self.round += 1;
                    self.start_round(ctx);
                }
            }
            _ => {}
        }
    }
}

impl<A: Application> Process<M<A>> for LedgerNode<A> {
    fn on_start(&mut self, ctx: &mut Context<'_, M<A>>) {
        self.with_app(ctx, |app, app_ctx| app.on_start(app_ctx));
        if self.byz.is_silent() {
            return;
        }
        ctx.set_timer(self.config.gossip_interval, TIMER_GOSSIP);
        // Height 1 starts one block interval into the run.
        self.schedule_start_height(1, ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: M<A>, ctx: &mut Context<'_, M<A>>) {
        if self.byz.is_silent() {
            // A silent node ignores everything, including client requests.
            return;
        }
        if let NetMsg::App(m) = msg {
            self.with_app(ctx, |app, app_ctx| app.on_message(from, m, app_ctx));
        } else {
            self.handle_consensus_msg(from, msg, ctx);
        }
    }

    /// Coalesced same-instant deliveries: consecutive application messages
    /// are threaded to the application as one batch through
    /// [`Application::on_messages`] — one `with_app` round (one submit pass,
    /// one `AppCtx`) for the whole run instead of one per message.
    /// Consensus messages are dispatched in place, preserving the exact
    /// per-message order a non-coalesced scheduler would have produced.
    fn on_messages(&mut self, batch: &mut Vec<(ProcessId, M<A>)>, ctx: &mut Context<'_, M<A>>) {
        if self.byz.is_silent() {
            batch.clear();
            return;
        }
        let mut app_batch = std::mem::take(&mut self.app_batch);
        debug_assert!(app_batch.is_empty());
        for (from, msg) in batch.drain(..) {
            match msg {
                NetMsg::App(m) => app_batch.push((from, m)),
                other => {
                    if !app_batch.is_empty() {
                        self.with_app(ctx, |app, app_ctx| app.on_messages(&mut app_batch, app_ctx));
                        app_batch.clear();
                    }
                    self.handle_consensus_msg(from, other, ctx);
                }
            }
        }
        if !app_batch.is_empty() {
            self.with_app(ctx, |app, app_ctx| app.on_messages(&mut app_batch, app_ctx));
            app_batch.clear();
        }
        self.app_batch = app_batch;
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<'_, M<A>>) {
        if token & APP_TIMER_BASE != 0 {
            if self.byz.is_silent() {
                return;
            }
            let app_token = token & !APP_TIMER_BASE;
            self.with_app(ctx, |app, app_ctx| app.on_timer(app_token, app_ctx));
        } else {
            self.on_internal_timer(token, ctx);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setchain_simnet::{NetworkConfig, SimTime, Simulation, SimulationConfig, Wire};

    /// Minimal application used to exercise the ledger: transactions are
    /// (id, size) pairs, invalid ids are odd multiples of 1000, and every
    /// committed transaction is recorded in order.
    #[derive(Clone, Debug)]
    struct TestTx {
        id: u128,
        size: usize,
    }

    impl TxData for TestTx {
        fn tx_id(&self) -> TxId {
            TxId(self.id)
        }
        fn wire_size(&self) -> usize {
            self.size
        }
    }

    #[derive(Clone, Debug)]
    enum TestMsg {
        Submit(u128, usize),
    }

    impl Wire for TestMsg {
        fn wire_size(&self) -> usize {
            32
        }
    }

    #[derive(Default)]
    struct TestApp {
        committed: Vec<(u64, u128)>, // (height, tx id)
        blocks_seen: u64,
    }

    impl Application for TestApp {
        type Tx = TestTx;
        type Msg = TestMsg;

        fn check_tx(&self, tx: &TestTx) -> bool {
            tx.id % 1000 != 999
        }

        fn finalize_block(
            &mut self,
            block: &Block<TestTx>,
            _ctx: &mut AppCtx<'_, '_, '_, TestTx, TestMsg>,
        ) {
            self.blocks_seen += 1;
            for tx in &block.txs {
                self.committed.push((block.height, tx.id));
            }
        }

        fn on_message(
            &mut self,
            _from: ProcessId,
            msg: TestMsg,
            ctx: &mut AppCtx<'_, '_, '_, TestTx, TestMsg>,
        ) {
            let TestMsg::Submit(id, size) = msg;
            ctx.append(TestTx { id, size });
        }
    }

    type Node = LedgerNode<TestApp>;
    type Msg = NetMsg<TestTx, TestMsg>;

    struct Cluster {
        sim: Simulation<Msg>,
        n: usize,
        trace: LedgerTrace,
    }

    fn build_cluster(n: usize, byz: Vec<(usize, ByzMode)>, seed: u64) -> Cluster {
        let registry = KeyRegistry::bootstrap(seed, n, 4);
        let config = LedgerConfig::with_validators(n);
        let trace = LedgerTrace::new();
        let mut sim = Simulation::new(SimulationConfig {
            seed,
            network: NetworkConfig::lan(),
        });
        for i in 0..n {
            let id = ProcessId::server(i);
            let mode = byz
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, m)| *m)
                .unwrap_or(ByzMode::Correct);
            let node = Node::new(
                id,
                config.clone(),
                registry.lookup(id).unwrap(),
                registry.clone(),
                TestApp::default(),
                trace.clone(),
                mode,
            );
            sim.add_process(id, Box::new(node));
        }
        Cluster { sim, n, trace }
    }

    fn submit(sim: &mut Simulation<Msg>, at_ms: u64, to: usize, id: u128, size: usize) {
        sim.schedule_message(
            SimTime::from_millis(at_ms),
            ProcessId::client(0),
            ProcessId::server(to),
            NetMsg::App(TestMsg::Submit(id, size)),
        );
    }

    fn committed_sequence(cluster: &Cluster, node: usize) -> Vec<(u64, u128)> {
        let n: &Node = cluster
            .sim
            .process(ProcessId::server(node))
            .expect("node exists");
        n.app().committed.clone()
    }

    #[test]
    fn all_nodes_commit_same_transactions_in_same_order() {
        let mut cluster = build_cluster(4, vec![], 1);
        for i in 0..100u128 {
            submit(
                &mut cluster.sim,
                100 + i as u64 * 10,
                (i % 4) as usize,
                i,
                200,
            );
        }
        cluster.sim.run_until(SimTime::from_secs(20));
        let reference = committed_sequence(&cluster, 0);
        assert_eq!(
            reference
                .iter()
                .map(|(_, id)| *id)
                .collect::<HashSet<_>>()
                .len(),
            100,
            "all 100 transactions commit exactly once"
        );
        for node in 1..cluster.n {
            assert_eq!(
                committed_sequence(&cluster, node),
                reference,
                "node {node} diverged"
            );
        }
    }

    #[test]
    fn block_rate_matches_configuration() {
        let mut cluster = build_cluster(4, vec![], 2);
        // Keep a steady trickle of transactions so blocks keep being produced.
        for i in 0..200u128 {
            submit(&mut cluster.sim, 50 + i as u64 * 100, 0, i, 100);
        }
        cluster.sim.run_until(SimTime::from_secs(25));
        let rate = cluster.trace.block_rate();
        assert!(
            (0.6..=0.95).contains(&rate),
            "expected ~0.8 blocks/s, measured {rate:.3}"
        );
    }

    #[test]
    fn block_size_limit_is_respected() {
        let mut cluster = build_cluster(4, vec![], 3);
        // 200 transactions of 100 kB each cannot fit in one 0.5 MB block.
        for i in 0..200u128 {
            submit(&mut cluster.sim, 100, 0, i, 100_000);
        }
        cluster.sim.run_until(SimTime::from_secs(60));
        for b in cluster.trace.blocks() {
            assert!(b.bytes <= 500_000, "block {b:?} exceeds the size limit");
        }
        let total: usize = cluster.trace.blocks().iter().map(|b| b.txs).sum();
        assert_eq!(total, 200, "all transactions eventually committed");
    }

    #[test]
    fn invalid_transactions_never_commit() {
        let mut cluster = build_cluster(4, vec![], 4);
        submit(&mut cluster.sim, 100, 0, 999, 100); // rejected by check_tx
        submit(&mut cluster.sim, 100, 0, 1, 100);
        cluster.sim.run_until(SimTime::from_secs(10));
        let committed = committed_sequence(&cluster, 0);
        assert!(committed.iter().any(|(_, id)| *id == 1));
        assert!(!committed.iter().any(|(_, id)| *id == 999));
    }

    #[test]
    fn duplicate_submissions_commit_once() {
        let mut cluster = build_cluster(4, vec![], 5);
        submit(&mut cluster.sim, 100, 0, 42, 100);
        submit(&mut cluster.sim, 150, 1, 42, 100);
        submit(&mut cluster.sim, 4000, 2, 42, 100); // resubmitted after commit
        cluster.sim.run_until(SimTime::from_secs(12));
        let committed = committed_sequence(&cluster, 0);
        assert_eq!(committed.iter().filter(|(_, id)| *id == 42).count(), 1);
    }

    #[test]
    fn tolerates_silent_validator() {
        let mut cluster = build_cluster(4, vec![(3, ByzMode::Silent)], 6);
        for i in 0..50u128 {
            submit(
                &mut cluster.sim,
                100 + i as u64 * 20,
                (i % 3) as usize,
                i,
                200,
            );
        }
        cluster.sim.run_until(SimTime::from_secs(30));
        let committed = committed_sequence(&cluster, 0);
        assert_eq!(
            committed
                .iter()
                .map(|(_, id)| *id)
                .collect::<HashSet<_>>()
                .len(),
            50
        );
        // The other correct nodes agree.
        assert_eq!(committed_sequence(&cluster, 1), committed);
        assert_eq!(committed_sequence(&cluster, 2), committed);
    }

    #[test]
    fn silent_proposer_is_skipped_by_round_timeout() {
        // Server 1 proposes height 1; make it silent so round 0 times out.
        let mut cluster = build_cluster(4, vec![(1, ByzMode::Silent)], 7);
        submit(&mut cluster.sim, 100, 0, 7, 100);
        cluster.sim.run_until(SimTime::from_secs(30));
        let committed = committed_sequence(&cluster, 0);
        assert!(
            committed.iter().any(|(_, id)| *id == 7),
            "tx eventually committed"
        );
        let node: &Node = cluster.sim.process(ProcessId::server(0)).unwrap();
        assert!(node.stats().round_timeouts >= 1);
    }

    #[test]
    fn equivocating_proposer_does_not_split_correct_nodes() {
        let mut cluster = build_cluster(4, vec![(1, ByzMode::EquivocatingProposer)], 8);
        for i in 0..30u128 {
            submit(&mut cluster.sim, 100 + i as u64 * 10, 0, i, 150);
        }
        cluster.sim.run_until(SimTime::from_secs(40));
        let a = committed_sequence(&cluster, 0);
        let b = committed_sequence(&cluster, 2);
        let c = committed_sequence(&cluster, 3);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn withheld_precommits_do_not_stop_progress() {
        let mut cluster = build_cluster(4, vec![(2, ByzMode::WithholdPrecommit)], 9);
        for i in 0..20u128 {
            submit(&mut cluster.sim, 100 + i as u64 * 10, 0, i, 150);
        }
        cluster.sim.run_until(SimTime::from_secs(20));
        let committed = committed_sequence(&cluster, 0);
        assert_eq!(
            committed
                .iter()
                .map(|(_, id)| *id)
                .collect::<HashSet<_>>()
                .len(),
            20
        );
    }

    #[test]
    fn trace_records_mempool_and_ledger_stages() {
        let mut cluster = build_cluster(4, vec![], 10);
        submit(&mut cluster.sim, 100, 0, 5, 100);
        cluster.sim.run_until(SimTime::from_secs(10));
        let tx = TxId(5);
        let first = cluster
            .trace
            .first_mempool(&tx)
            .expect("first mempool recorded");
        let all = cluster
            .trace
            .kth_mempool(&tx, 4)
            .expect("replicated to all mempools");
        let ledger = cluster.trace.ledger_time(&tx).expect("committed");
        assert!(first <= all);
        assert!(all <= ledger);
        assert!(cluster.trace.ledger_height(&tx).unwrap() >= 1);
    }

    #[test]
    fn partitioned_node_catches_up_after_heal() {
        let mut cluster = build_cluster(4, vec![], 11);
        // Partition server 3 away from everyone for the first 10 seconds.
        let minority = [ProcessId::server(3)];
        let majority = [
            ProcessId::server(0),
            ProcessId::server(1),
            ProcessId::server(2),
        ];
        cluster
            .sim
            .add_partition(setchain_simnet::Partition::between(minority, majority));
        for i in 0..40u128 {
            submit(
                &mut cluster.sim,
                100 + i as u64 * 50,
                (i % 3) as usize,
                i,
                150,
            );
        }
        cluster.sim.run_until(SimTime::from_secs(10));
        cluster.sim.heal_all_partitions();
        // Keep some traffic flowing so the healed node sees newer heights and
        // triggers catch-up sync.
        for i in 100..130u128 {
            submit(&mut cluster.sim, 11_000 + (i as u64 - 100) * 50, 0, i, 150);
        }
        cluster.sim.run_until(SimTime::from_secs(40));
        let behind = committed_sequence(&cluster, 3);
        let reference = committed_sequence(&cluster, 0);
        let node3: &Node = cluster.sim.process(ProcessId::server(3)).unwrap();
        assert!(node3.stats().synced_blocks > 0, "node 3 used block sync");
        // Node 3 committed a prefix-consistent sequence equal to the
        // reference it caught up to.
        assert_eq!(behind, reference[..behind.len()].to_vec());
        assert!(
            behind.len() >= 40,
            "node 3 caught up with pre-partition traffic"
        );
    }

    #[test]
    fn healed_node_rejoins_voting_instead_of_trailing_sync() {
        // Sharper than `partitioned_node_catches_up_after_heal`: after the
        // heal the node must *re-enter consensus*, not trail the cluster
        // through block sync forever. Without the future-height message
        // buffer, the proposal for height `h + 1` flies past while block
        // sync delivers `h`, so every post-heal block arrives via sync and
        // the node stays exactly one height behind at any instant.
        let mut cluster = build_cluster(4, vec![], 13);
        let minority = [ProcessId::server(3)];
        let majority = [
            ProcessId::server(0),
            ProcessId::server(1),
            ProcessId::server(2),
        ];
        cluster
            .sim
            .add_partition(setchain_simnet::Partition::between(minority, majority));
        for i in 0..40u128 {
            submit(
                &mut cluster.sim,
                100 + i as u64 * 50,
                (i % 3) as usize,
                i,
                150,
            );
        }
        cluster.sim.run_until(SimTime::from_secs(10));
        cluster.sim.heal_all_partitions();
        // Empty blocks keep heights advancing; no further traffic needed.
        cluster.sim.run_until(SimTime::from_secs(40));
        let node0: &Node = cluster.sim.process(ProcessId::server(0)).unwrap();
        let node3: &Node = cluster.sim.process(ProcessId::server(3)).unwrap();
        assert!(
            node3.stats().future_buffered > 0,
            "catch-up buffered in-flight consensus messages"
        );
        // Sync bridged the partition gap only; the bulk of post-heal blocks
        // committed through ordinary voting.
        assert!(
            node3.stats().blocks_committed > 2 * node3.stats().synced_blocks,
            "node 3 kept trailing through sync: {} committed, {} synced",
            node3.stats().blocks_committed,
            node3.stats().synced_blocks
        );
        assert!(
            node3.height() + 1 >= node0.height(),
            "node 3 rejoined the voting tip: {} vs {}",
            node3.height(),
            node0.height()
        );
        let behind = committed_sequence(&cluster, 3);
        let reference = committed_sequence(&cluster, 0);
        assert_eq!(behind, reference[..behind.len()].to_vec());
    }

    #[test]
    fn empty_blocks_are_produced_without_traffic() {
        let mut cluster = build_cluster(4, vec![], 12);
        cluster.sim.run_until(SimTime::from_secs(10));
        let node: &Node = cluster.sim.process(ProcessId::server(0)).unwrap();
        assert!(node.stats().blocks_committed >= 5);
        assert_eq!(node.stats().txs_committed, 0);
    }

    #[test]
    fn seven_and_ten_validator_clusters_work() {
        for n in [7usize, 10] {
            let mut cluster = build_cluster(n, vec![], 13 + n as u64);
            for i in 0..30u128 {
                submit(
                    &mut cluster.sim,
                    100 + i as u64 * 10,
                    (i as usize) % n,
                    i,
                    150,
                );
            }
            cluster.sim.run_until(SimTime::from_secs(15));
            let reference = committed_sequence(&cluster, 0);
            assert_eq!(
                reference
                    .iter()
                    .map(|(_, id)| *id)
                    .collect::<HashSet<_>>()
                    .len(),
                30,
                "n={n}"
            );
            for node in 1..n {
                assert_eq!(
                    committed_sequence(&cluster, node),
                    reference,
                    "n={n} node={node}"
                );
            }
        }
    }
}
