//! Cryptographic substrate for the Setchain reproduction.
//!
//! The paper relies on three cryptographic primitives:
//!
//! * **SHA-512** ([`sha512`]) for hashing batches and epochs (FIPS 180-4),
//!   plus SHA-256 ([`sha256`]) used internally for identifiers.
//! * **ed25519 signatures** under an assumed PKI. This crate substitutes a
//!   deterministic keyed-hash signature scheme ([`sign`]) whose verification
//!   is mediated by the PKI [`KeyRegistry`]; see `DESIGN.md` §3 for why the
//!   substitution preserves the behaviour the protocols depend on. Signature
//!   material is padded so that epoch-proofs and hash-batches have the same
//!   wire length as in the paper (139 bytes).
//! * A binary [`merkle`] tree, used by the ledger to commit to block
//!   contents and by tests to cross-check batch hashing.
//!
//! Everything in this crate is implemented from scratch on top of `std`;
//! nothing here should be used outside of this reproduction for real
//! security purposes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fxhash;
pub mod hash;
pub mod hmac;
pub mod keys;
pub mod merkle;
pub mod parallel;
pub mod signature;

pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use hash::{sha256, sha256_many, sha512, Digest256, Digest512, Sha256, Sha512};
pub use hmac::{
    hmac_sha256, hmac_sha512, mac_batch_root, verify_batch_root, HmacSha256Key, HmacSha512Key,
};
pub use keys::{KeyPair, KeyRegistry, ProcessId, PublicKey, SecretKey};
pub use merkle::{domain_hash, framed_hash, merkle_root, MerkleProof, MerkleTree};
pub use parallel::{default_threads, parallel_map, parallel_map_min, MIN_PARALLEL_LEN};
pub use signature::{sign, sign_with, verify, verify_batch, SigVerifier, Signature, SIGNATURE_LEN};

/// Length in bytes of an epoch-proof / hash-batch on the wire, as reported in
/// the paper's evaluation section (Section 4): 139 bytes.
pub const PROOF_WIRE_LEN: usize = 139;
