//! Regenerates Fig. 3 (efficiency under varying rate / servers / delay).
fn main() {
    let ctx = setchain_bench::ExperimentCtx::from_env();
    println!("scale = {} (SETCHAIN_SCALE)", ctx.scale);
    let _ = setchain_bench::figures::fig3_efficiency(&ctx);
}
