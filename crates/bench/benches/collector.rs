//! Collector and batch-preparation micro-benchmarks: the per-batch work of
//! Compresschain (materialize + compress) versus Hashchain (hash only), which
//! is the design choice behind Hashchain's throughput advantage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setchain::hashchain::batch_hash;
use setchain::{Collector, Element};
use setchain_compress::compress;
use setchain_crypto::{KeyRegistry, ProcessId};
use setchain_simnet::SimTime;
use setchain_workload::ArbitrumWorkload;

fn elements(count: usize) -> Vec<Element> {
    let registry = KeyRegistry::bootstrap(3, 1, 1);
    let mut workload = ArbitrumWorkload::for_client(&registry, ProcessId::client(0), 11);
    workload.take(count)
}

fn bench_collector_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("collector_fill_and_flush");
    for limit in [100usize, 500] {
        let es = elements(limit);
        group.bench_with_input(BenchmarkId::new("fill_flush", limit), &es, |b, es| {
            b.iter(|| {
                let mut collector = Collector::new(es.len());
                for e in es {
                    collector.add_element(*e);
                }
                assert!(collector.is_ready());
                collector.flush(SimTime::ZERO)
            })
        });
    }
    group.finish();
}

fn bench_batch_preparation(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_preparation");
    group.sample_size(20);
    for limit in [100usize, 500] {
        let es = elements(limit);
        // Hashchain's per-batch work: hash the batch.
        group.bench_with_input(BenchmarkId::new("hashchain_hash", limit), &es, |b, es| {
            b.iter(|| batch_hash(es, &[]))
        });
        // Compresschain's per-batch work: materialize and compress.
        group.bench_with_input(
            BenchmarkId::new("compresschain_compress", limit),
            &es,
            |b, es| {
                b.iter(|| {
                    let mut raw = Vec::new();
                    for e in es {
                        raw.extend_from_slice(&e.materialize());
                    }
                    compress(&raw)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_collector_fill, bench_batch_preparation);
criterion_main!(benches);
