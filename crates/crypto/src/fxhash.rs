//! Deterministic fast hashing for simulation-internal maps.
//!
//! The Setchain servers keep several maps keyed by small fixed-size ids
//! (`ElementId`, epoch numbers, `TxId`s) that are touched a handful of times
//! per element per server — millions of operations per run. `std`'s default
//! SipHash is DoS-resistant but costs ~10× more than needed for trusted,
//! simulation-internal keys, and its per-process random seed makes iteration
//! order differ between runs. This module provides the classic `FxHash`
//! multiply-rotate hasher (as used by rustc) with a fixed seed: fast, and
//! bit-for-bit deterministic across runs — in line with the simulator's
//! reproducibility guarantee.
//!
//! Not for adversarial input: anything keyed by attacker-controlled bytes
//! should stay on the default hasher.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc `FxHash` function: rotate, xor, multiply per word.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_one(v: impl std::hash::Hash) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_ne!(hash_one(42u64), hash_one(43u64));
        assert_ne!(hash_one((1u64, 2u64)), hash_one((2u64, 1u64)));
        assert_ne!(hash_one(0u64), hash_one(1u64));
    }

    #[test]
    fn byte_slices_hash_by_content() {
        assert_eq!(
            hash_one(b"abcdefghij".as_slice()),
            hash_one(b"abcdefghij".as_slice())
        );
        assert_ne!(
            hash_one(b"abcdefghij".as_slice()),
            hash_one(b"abcdefghik".as_slice())
        );
        // Tail shorter than one word still participates.
        assert_ne!(
            hash_one(b"abcdefgh1".as_slice()),
            hash_one(b"abcdefgh2".as_slice())
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u64, &str> = FxHashMap::default();
        map.insert(7, "seven");
        assert_eq!(map.get(&7), Some(&"seven"));
        let mut set: FxHashSet<u128> = FxHashSet::default();
        assert!(set.insert(1 << 100));
        assert!(!set.insert(1 << 100));
    }
}
