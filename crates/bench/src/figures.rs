//! One function per table/figure of the paper. The `src/bin/*` binaries are
//! thin wrappers so that `all_experiments` can run everything in sequence.

use setchain::Algorithm;
use setchain_workload::{
    analysis::AnalysisParams, metrics::CommitTimes, metrics::StageLatencies, run_scenario,
    RunResult, Scenario, ThroughputSeries,
};

use crate::{
    banner, fmt_els, print_summary_table, summarize, summary_csv_rows, ExperimentCtx, RunSummary,
    SUMMARY_CSV_HEADER,
};

fn labelled(scenario: Scenario, label: String) -> Scenario {
    scenario.with_label(label)
}

fn run_and_summarize(ctx: &ExperimentCtx, scenario: Scenario) -> (RunResult, RunSummary) {
    println!("  running: {} …", scenario.label);
    let result = run_scenario(&scenario);
    let summary = summarize(ctx, &result);
    (result, summary)
}

/// Table 1: the evaluated parameter space.
pub fn table1(_ctx: &ExperimentCtx) {
    banner("Table 1: Parameters for Setchain evaluation");
    println!("{:<18} {:<38} Values", "Name", "Description");
    println!(
        "{:<18} {:<38} {:?}",
        "sending_rate",
        "Adding rate (el/s)",
        setchain_workload::scenario::table1::SENDING_RATES
    );
    println!(
        "{:<18} {:<38} {:?}",
        "collector_limit",
        "Collector size (el)",
        setchain_workload::scenario::table1::COLLECTOR_LIMITS
    );
    println!(
        "{:<18} {:<38} {:?}",
        "server_count",
        "Number of servers",
        setchain_workload::scenario::table1::SERVER_COUNTS
    );
    println!(
        "{:<18} {:<38} {:?}",
        "network_delay",
        "Delay increase (ms)",
        setchain_workload::scenario::table1::NETWORK_DELAYS_MS
    );
}

/// Fig. 1 (three panels) and Table 2: throughput over time of the three
/// algorithms for the paper's sending-rate / collector-size combinations,
/// with the analytical bound for reference.
pub fn fig1_throughput(ctx: &ExperimentCtx) {
    banner("Figure 1 + Table 2: throughput over time (10 servers, no added delay)");
    let panels: [(&str, f64, usize, Vec<Algorithm>); 3] = [
        (
            "left: 5000 el/s, c=100",
            5_000.0,
            100,
            vec![
                Algorithm::Vanilla,
                Algorithm::Compresschain,
                Algorithm::Hashchain,
            ],
        ),
        (
            "center: 10000 el/s, c=100",
            10_000.0,
            100,
            vec![Algorithm::Compresschain, Algorithm::Hashchain],
        ),
        (
            "right: 10000 el/s, c=500",
            10_000.0,
            500,
            vec![Algorithm::Compresschain, Algorithm::Hashchain],
        ),
    ];
    let mut table2_rows: Vec<String> = Vec::new();
    for (panel, rate, collector, algorithms) in panels {
        println!("\n-- Fig. 1 {panel} --");
        let mut csv_rows = Vec::new();
        let mut summaries = Vec::new();
        for algorithm in algorithms {
            let analytical = AnalysisParams::default()
                .with_collector(collector)
                .throughput(algorithm);
            let bound = analytical.min(rate);
            let scenario = labelled(
                ctx.scale_scenario(
                    Scenario::base(algorithm)
                        .with_rate(rate)
                        .with_collector(collector),
                ),
                format!("{algorithm} {rate} el/s c={collector}"),
            );
            let (result, summary) = run_and_summarize(ctx, scenario);
            let series = ThroughputSeries::compute(&result.trace, 9, result.finished_at);
            for (t, v) in &series.samples {
                csv_rows.push(format!("{algorithm},{t},{v:.1}"));
            }
            println!(
                "    {:<14} analytical bound = {:<14} (min with sending rate: {})",
                algorithm.name(),
                fmt_els(analytical),
                fmt_els(bound)
            );
            table2_rows.push(format!(
                "{},{},{:.0}",
                panel.replace(',', ";"),
                algorithm.name(),
                summary.avg_throughput
            ));
            summaries.push(summary);
        }
        print_summary_table(ctx, &summaries);
        let name = format!(
            "fig1_{}.csv",
            panel.split(':').next().unwrap_or("panel").trim()
        );
        ctx.write_csv(&name, "algorithm,time_s,committed_el_per_s", &csv_rows);
    }
    println!("\n-- Table 2: average throughput up to the injection end --");
    for row in &table2_rows {
        let mut parts = row.split(',');
        let (panel, alg, tput) = (
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
        );
        println!("  {:<28} {:<14} {:>10} el/s", panel, alg, tput);
    }
    ctx.write_csv("table2.csv", "panel,algorithm,avg_el_per_s", &table2_rows);
}

/// Fig. 2 (left): pushing the Hashchain limits — with and without
/// hash-reversal — compared with Compresschain (full and light) and Vanilla.
pub fn fig2_limits(ctx: &ExperimentCtx) {
    banner("Figure 2 (left): highest throughput, collector size 500");
    let runs: Vec<Scenario> = vec![
        labelled(
            ctx.scale_scenario(Scenario::base(Algorithm::Vanilla).with_rate(5_000.0)),
            "Vanilla 5k el/s".into(),
        ),
        labelled(
            ctx.scale_scenario(
                Scenario::base(Algorithm::Compresschain)
                    .with_rate(10_000.0)
                    .with_collector(500),
            ),
            "Compresschain 10k c=500".into(),
        ),
        labelled(
            ctx.scale_scenario(
                Scenario::base(Algorithm::Compresschain)
                    .with_rate(10_000.0)
                    .with_collector(500)
                    .light(),
            ),
            "Compresschain light 10k c=500".into(),
        ),
        labelled(
            ctx.scale_scenario(
                Scenario::base(Algorithm::Hashchain)
                    .with_rate(25_000.0)
                    .with_collector(500),
            ),
            "Hashchain 25k c=500".into(),
        ),
        labelled(
            ctx.scale_scenario(
                Scenario::base(Algorithm::Hashchain)
                    .with_rate(50_000.0)
                    .with_collector(500),
            ),
            "Hashchain 50k c=500".into(),
        ),
        labelled(
            ctx.scale_scenario(
                Scenario::base(Algorithm::Hashchain)
                    .with_rate(150_000.0)
                    .with_collector(500)
                    .light(),
            ),
            "Hashchain light 150k c=500".into(),
        ),
    ];
    let mut summaries = Vec::new();
    let mut csv_rows = Vec::new();
    for scenario in runs {
        let (result, summary) = run_and_summarize(ctx, scenario);
        let series = ThroughputSeries::compute(&result.trace, 9, result.finished_at);
        for (t, v) in &series.samples {
            csv_rows.push(format!("{},{t},{v:.1}", summary.label.replace(',', ";")));
        }
        summaries.push(summary);
    }
    print_summary_table(ctx, &summaries);
    let analytical = AnalysisParams::default().with_collector(500);
    println!(
        "\n  analytical bounds (c=500): Vanilla {}, Compresschain {}, Hashchain {}",
        fmt_els(analytical.vanilla()),
        fmt_els(analytical.compresschain()),
        fmt_els(analytical.hashchain())
    );
    ctx.write_csv(
        "fig2_left_series.csv",
        "label,time_s,committed_el_per_s",
        &csv_rows,
    );
    ctx.write_csv(
        "fig2_left_summary.csv",
        SUMMARY_CSV_HEADER,
        &summary_csv_rows(&summaries),
    );
}

/// Fig. 2 (right): analytical throughput for block sizes from 0.5 to 128 MB
/// (collector size 500).
pub fn fig2_analytical(ctx: &ExperimentCtx) {
    banner("Figure 2 (right): analytical throughput vs block size (c=500)");
    println!(
        "{:>10} {:>16} {:>16} {:>16}",
        "block", "Vanilla", "Compresschain", "Hashchain"
    );
    let mut rows = Vec::new();
    for mb in [0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
        let p = AnalysisParams::default()
            .with_collector(500)
            .with_block_capacity(mb * 1024.0 * 1024.0);
        println!(
            "{:>8}MB {:>16} {:>16} {:>16}",
            mb,
            fmt_els(p.vanilla()),
            fmt_els(p.compresschain()),
            fmt_els(p.hashchain())
        );
        rows.push(format!(
            "{mb},{:.0},{:.0},{:.0}",
            p.vanilla(),
            p.compresschain(),
            p.hashchain()
        ));
    }
    ctx.write_csv(
        "fig2_right_analytical.csv",
        "block_mb,vanilla,compresschain,hashchain",
        &rows,
    );
}

/// The five configurations compared throughout Figs. 3 and 5.
fn fig3_configs() -> Vec<(String, Algorithm, usize)> {
    vec![
        ("Vanilla".into(), Algorithm::Vanilla, 100),
        ("Compresschain c=100".into(), Algorithm::Compresschain, 100),
        ("Compresschain c=500".into(), Algorithm::Compresschain, 500),
        ("Hashchain c=100".into(), Algorithm::Hashchain, 100),
        ("Hashchain c=500".into(), Algorithm::Hashchain, 500),
    ]
}

/// Fig. 3: efficiency under different sending rates (a), server counts (b)
/// and network delays (c). Returns the run results so `fig5` can reuse them.
pub fn fig3_efficiency(ctx: &ExperimentCtx) -> Vec<RunResult> {
    banner("Figure 3: efficiency (base: 10 servers, 10000 el/s, 0 delay)");
    let mut all_results = Vec::new();

    let panels: Vec<(&str, Vec<Scenario>)> = vec![
        (
            "a: impact of sending rate",
            setchain_workload::scenario::table1::SENDING_RATES
                .iter()
                .flat_map(|&rate| {
                    fig3_configs().into_iter().map(move |(label, alg, c)| {
                        labelled(
                            Scenario::base(alg).with_rate(rate).with_collector(c),
                            format!("{label} @{rate} el/s"),
                        )
                    })
                })
                .collect(),
        ),
        (
            "b: impact of number of servers",
            setchain_workload::scenario::table1::SERVER_COUNTS
                .iter()
                .flat_map(|&n| {
                    fig3_configs().into_iter().map(move |(label, alg, c)| {
                        labelled(
                            Scenario::base(alg).with_servers(n).with_collector(c),
                            format!("{label} n={n}"),
                        )
                    })
                })
                .collect(),
        ),
        (
            "c: impact of network delay",
            setchain_workload::scenario::table1::NETWORK_DELAYS_MS
                .iter()
                .flat_map(|&ms| {
                    fig3_configs().into_iter().map(move |(label, alg, c)| {
                        labelled(
                            Scenario::base(alg).with_delay_ms(ms).with_collector(c),
                            format!("{label} delay={ms}ms"),
                        )
                    })
                })
                .collect(),
        ),
    ];

    for (panel, scenarios) in panels {
        println!("\n-- Fig. 3{panel} --");
        let mut summaries = Vec::new();
        for scenario in scenarios {
            let scenario = ctx.scale_scenario(scenario);
            let (result, summary) = run_and_summarize(ctx, scenario);
            summaries.push(summary);
            all_results.push(result);
        }
        print_summary_table(ctx, &summaries);
        let name = format!("fig3{}.csv", panel.chars().next().unwrap_or('x'));
        ctx.write_csv(&name, SUMMARY_CSV_HEADER, &summary_csv_rows(&summaries));
    }
    all_results
}

/// Fig. 5 (Appendix F): commit-time milestones (first element, 10%…50%)
/// computed from the Fig. 3 runs.
pub fn fig5_commit_times(ctx: &ExperimentCtx, results: &[RunResult]) {
    banner("Figure 5: commit times (first element, 10%-50% of elements)");
    println!(
        "{:<36} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "scenario", "first", "10%", "20%", "30%", "40%", "50%"
    );
    let fmt = |v: Option<f64>| v.map(|x| format!("{x:.1}s")).unwrap_or_else(|| "-".into());
    let mut rows = Vec::new();
    for result in results {
        let ct = CommitTimes::compute(&result.trace);
        println!(
            "{:<36} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            result.scenario.label,
            fmt(ct.first),
            fmt(ct.fractions[0].1),
            fmt(ct.fractions[1].1),
            fmt(ct.fractions[2].1),
            fmt(ct.fractions[3].1),
            fmt(ct.fractions[4].1),
        );
        rows.push(format!(
            "{},{},{},{},{},{},{}",
            result.scenario.label.replace(',', ";"),
            ct.first.unwrap_or(f64::NAN),
            ct.fractions[0].1.unwrap_or(f64::NAN),
            ct.fractions[1].1.unwrap_or(f64::NAN),
            ct.fractions[2].1.unwrap_or(f64::NAN),
            ct.fractions[3].1.unwrap_or(f64::NAN),
            ct.fractions[4].1.unwrap_or(f64::NAN),
        ));
    }
    ctx.write_csv(
        "fig5_commit_times.csv",
        "label,first_s,p10_s,p20_s,p30_s,p40_s,p50_s",
        &rows,
    );
}

/// Fig. 4: cumulative distribution of the latency to reach each stage
/// (first mempool, f+1 mempools, all mempools, ledger, f+1 epoch-proofs)
/// for the three algorithms at 1 250 el/s with 10 servers.
pub fn fig4_latency_cdf(ctx: &ExperimentCtx) {
    banner("Figure 4: latency CDF per stage (10 servers, 1250 el/s, c=100)");
    let quantiles = [0.10, 0.25, 0.50, 0.75, 0.90, 0.99];
    let mut rows = Vec::new();
    for algorithm in Algorithm::ALL {
        let scenario = labelled(
            ctx.scale_scenario(
                Scenario::base(algorithm)
                    .with_rate(1_250.0)
                    .with_collector(100)
                    .detailed(),
            ),
            format!("{algorithm} 1250 el/s"),
        );
        println!("  running: {} …", scenario.label);
        let result = run_scenario(&scenario);
        let stages = StageLatencies::compute(
            &result.trace,
            &result.ledger_trace,
            scenario.setchain_f(),
            scenario.servers,
        );
        type StageProbe = fn(&setchain_workload::metrics::StageSample) -> Option<f64>;
        let stage_list: [(&str, StageProbe); 5] = [
            ("first mempool", |s| s.first_mempool),
            ("f+1 mempools", |s| s.quorum_mempools),
            ("all mempools", |s| s.all_mempools),
            ("ledger", |s| s.ledger),
            ("f+1 epoch-proofs", |s| s.committed),
        ];
        println!(
            "    {:<18} {}",
            "stage",
            quantiles
                .iter()
                .map(|q| format!("{:>8}", format!("p{:.0}", q * 100.0)))
                .collect::<String>()
        );
        for (name, f) in stage_list {
            let mut line = format!("    {name:<18} ");
            for &q in &quantiles {
                let v = stages.quantile(f, q);
                line.push_str(&format!(
                    "{:>8}",
                    v.map(|x| format!("{x:.2}s")).unwrap_or_else(|| "-".into())
                ));
                rows.push(format!(
                    "{algorithm},{name},{q},{}",
                    v.map(|x| format!("{x:.4}")).unwrap_or_else(|| "".into())
                ));
            }
            println!("{line}");
        }
        let committed_p99 = stages.quantile(|s| s.committed, 0.99);
        if let Some(p99) = committed_p99 {
            println!("    commit latency p99 = {p99:.2}s (paper: finality below 4 s)");
        }
    }
    ctx.write_csv(
        "fig4_latency_quantiles.csv",
        "algorithm,stage,quantile,latency_s",
        &rows,
    );
}

/// Appendix D.1: the analytical model evaluated with the paper's constants.
pub fn appendix_d(ctx: &ExperimentCtx) {
    banner("Appendix D.1: analytical throughput with the evaluation constants");
    let rows: Vec<(String, f64, f64)> = vec![
        ("Vanilla".into(), AnalysisParams::default().vanilla(), 955.0),
        (
            "Compresschain c=100 (r=2.7)".into(),
            AnalysisParams::default()
                .with_collector(100)
                .compresschain(),
            2_497.0,
        ),
        (
            "Compresschain c=500 (r=3.5)".into(),
            AnalysisParams::default()
                .with_collector(500)
                .compresschain(),
            3_330.0,
        ),
        (
            "Hashchain c=100".into(),
            AnalysisParams::default().with_collector(100).hashchain(),
            27_157.0,
        ),
        (
            "Hashchain c=500".into(),
            AnalysisParams::default().with_collector(500).hashchain(),
            147_857.0,
        ),
    ];
    println!("{:<30} {:>16} {:>16}", "configuration", "computed", "paper");
    let mut csv = Vec::new();
    for (label, computed, paper) in &rows {
        println!("{:<30} {:>12.0} el/s {:>12.0} el/s", label, computed, paper);
        csv.push(format!("{label},{computed:.0},{paper:.0}"));
    }
    let p = AnalysisParams::default().with_collector(500);
    println!(
        "  ratio Hashchain/Vanilla = {:.0} (paper ≈ 155); Hashchain/Compresschain = {:.0} (paper ≈ 44)",
        p.hashchain() / p.vanilla(),
        p.hashchain() / p.compresschain()
    );
    ctx.write_csv(
        "appendix_d.csv",
        "configuration,computed_el_s,paper_el_s",
        &csv,
    );
}
