//! Setchain: Byzantine-tolerant grow-only sets with epochs and epoch-proofs.
//!
//! This crate is the reproduction of the paper's primary contribution: three
//! algorithms that implement the Setchain distributed object on top of a
//! block-based ledger.
//!
//! * [`VanillaApp`] — every element is appended to the ledger as its own
//!   transaction; the valid elements of each ledger block form an epoch
//!   (Appendix B of the paper).
//! * [`CompresschainApp`] — elements are collected into batches, compressed,
//!   and each compressed batch appended as a single ledger transaction that
//!   becomes an epoch.
//! * [`HashchainApp`] — batches are hashed; only the fixed-size signed hash
//!   is appended to the ledger. A batch consolidates into an epoch once
//!   hash-batches from `f + 1` distinct servers are on the ledger, and batch
//!   contents are recovered from their origin server through the
//!   hash-reversal (`Request_batch`) service.
//!
//! All three maintain *epoch-proofs* — server signatures over
//! `Hash(epoch_number, epoch_elements)` — so that a light client talking to a
//! single (possibly Byzantine) server can verify an epoch with `f + 1`
//! consistent proofs ([`client::verify_epoch`]).
//!
//! All three implement the object-safe [`SetchainApp`] trait — the
//! variant-agnostic application API (`state()`, `stats()`, epoch access) that
//! deployments, benches and tests program against — and are constructed
//! through [`AppFactory`], the single variant-dispatch site.
//!
//! The algorithms are ABCI-style [`Application`](setchain_ledger::Application)s
//! for the [`setchain-ledger`](setchain_ledger) substrate and run inside the
//! deterministic [`setchain-simnet`](setchain_simnet) simulator. The
//! `setchain-workload` crate builds full deployments (servers + injection
//! clients + metrics) on top of this crate.
//!
//! # Example
//!
//! Epoch bookkeeping through the public state API:
//!
//! ```
//! use setchain::{Algorithm, Element, ElementId, SetchainState};
//! use setchain_crypto::{KeyPair, ProcessId};
//!
//! let keys = KeyPair::derive(ProcessId::client(0), 42);
//! let elements: Vec<Element> = (0..3)
//!     .map(|i| Element::new(&keys, ElementId::new(0, i), 64, i))
//!     .collect();
//!
//! let mut state = SetchainState::new();
//! assert_eq!(state.record_epoch(elements), 1);
//! assert!(state.check_consistent_sets());
//! assert!(state.check_unique_epoch());
//! assert_eq!(Algorithm::ALL.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod app;
pub mod batch_auth;
pub mod byzantine;
pub mod client;
pub mod collector;
pub mod compresschain;
pub mod config;
pub mod element;
pub mod hashchain;
pub mod messages;
pub mod proofs;
pub mod quota;
pub mod server;
pub mod shard;
pub mod sortition;
pub mod state;
pub mod trace;
pub mod tx;
pub mod vanilla;

pub use admission::AdmissionCache;
pub use app::{AppFactory, SetchainApp};
pub use batch_auth::{
    batch_root, batch_tree, prove_element, AuthedBatch, ElementProof, BATCH_CHUNK,
};
pub use byzantine::ServerByzMode;
pub use client::{verify_epoch, EpochVerification, LightClient, RETRY_AFTER_PER_MISSING_PROOF};
pub use collector::Collector;
pub use compresschain::CompresschainApp;
pub use config::{AuthMode, CostModel, QuotaConfig, SetchainConfig, StoreConfig};
pub use element::{Element, ElementGenerator, ElementId};
pub use hashchain::{HashchainApp, SharedBatchRegistry};
pub use messages::{CatchupEpoch, GetSnapshot, SetchainMsg};
pub use proofs::{
    epoch_hash, epoch_hash_for_root, epoch_root, make_epoch_proof, make_epoch_proof_with_key,
    prove_epoch_inclusion, verify_epoch_proof, EpochInclusionProof, EpochProof,
};
pub use quota::{QuotaState, QuotaVerdict, PENDING_RETRY};
pub use server::{ServerCore, ServerStats, ShardStats, CATCHUP_RETRY, MAX_CATCHUP_EPOCHS};
pub use shard::{aggregate_epoch, sub_epoch_commitment, ShardRing, ShardedEpoch, SubEpoch};
pub use sortition::{round_seed, select_committee, verify_member, Candidate};
pub use state::SetchainState;
pub use trace::SetchainTrace;
pub use tx::{CompressedBatch, HashBatch, SetchainTx};
pub use vanilla::VanillaApp;

/// The paper's three Setchain algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// One ledger transaction per element.
    Vanilla,
    /// One compressed batch per ledger transaction.
    Compresschain,
    /// One fixed-size hash-batch per ledger transaction, plus hash reversal.
    Hashchain,
}

impl Algorithm {
    /// All three algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 3] = [
        Algorithm::Vanilla,
        Algorithm::Compresschain,
        Algorithm::Hashchain,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Vanilla => "Vanilla",
            Algorithm::Compresschain => "Compresschain",
            Algorithm::Hashchain => "Hashchain",
        }
    }

    /// True for the batched algorithms (Compresschain, Hashchain), which
    /// collect elements before appending; Vanilla appends one ledger
    /// transaction per element and ignores the collector configuration.
    pub fn uses_collector(&self) -> bool {
        !matches!(self, Algorithm::Vanilla)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::Vanilla.name(), "Vanilla");
        assert_eq!(Algorithm::Compresschain.to_string(), "Compresschain");
        assert_eq!(Algorithm::ALL.len(), 3);
    }
}
