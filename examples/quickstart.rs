//! Quickstart: run a 4-server Hashchain Setchain, add elements through a
//! light client, and verify an epoch with `f + 1` epoch-proofs while talking
//! to a single server.
//!
//! ```sh
//! cargo run --release -p setchain-workload --example quickstart
//! ```

use setchain::{verify_epoch, Algorithm, Element, ElementId, SetchainMsg};
use setchain_crypto::{KeyPair, ProcessId};
use setchain_simnet::SimTime;
use setchain_workload::{Deployment, RequestClient, Scenario};

fn main() {
    // 1. Describe the deployment: 4 servers running Hashchain, a light
    //    background load, small collector so epochs form quickly.
    let scenario = Scenario::base(Algorithm::Hashchain)
        .with_label("quickstart")
        .with_servers(4)
        .with_rate(200.0)
        .with_collector(25)
        .with_injection_secs(5)
        .with_max_run_secs(30)
        .with_seed(2024);
    let mut deployment = Deployment::build(&scenario);
    let n = scenario.servers;
    let f = scenario.setchain_f();
    println!(
        "Deployment: {n} Hashchain servers, f = {f}, collector = {}",
        scenario.collector_limit
    );

    // 2. Create our own client identity and register it in the PKI.
    let me = ProcessId::client(100);
    let my_keys = KeyPair::derive(me, 777);
    deployment.registry.register(my_keys);

    // 3. Script the client: add three elements to server 0 early on, then ask
    //    a *different* server (server 2) for epoch 1 and a state summary.
    let my_elements: Vec<Element> = (0..3)
        .map(|i| Element::new(&my_keys, ElementId::new(100, i), 438, 1000 + i))
        .collect();
    let mut script = Vec::new();
    for (i, e) in my_elements.iter().enumerate() {
        script.push((
            SimTime::from_millis(500 + i as u64 * 100),
            ProcessId::server(0),
            SetchainMsg::Add(*e),
        ));
    }
    script.push((
        SimTime::from_secs(20),
        ProcessId::server(2),
        SetchainMsg::Get { request_id: 1 },
    ));
    script.push((
        SimTime::from_secs(20),
        ProcessId::server(2),
        SetchainMsg::GetEpoch {
            request_id: 2,
            epoch: 1,
        },
    ));
    deployment
        .sim
        .add_process(me, Box::new(RequestClient::new(script)));

    // 4. Run the simulation.
    deployment.sim.run_until(SimTime::from_secs(25));

    // 5. Inspect the responses the client received from server 2.
    let client: &RequestClient = deployment.sim.process(me).expect("client actor");
    for (at, from, response) in client.responses() {
        match response {
            SetchainMsg::GetResponse { snapshot, .. } => {
                println!(
                    "[{at}] get() from {from}: |the_set| = {}, epoch = {}, {} epochs have ≥ f+1 proofs",
                    snapshot.the_set_len, snapshot.epoch, snapshot.epochs_with_quorum
                );
            }
            SetchainMsg::EpochResponse {
                epoch,
                elements,
                proofs,
                ..
            } => {
                let verdict = verify_epoch(&deployment.registry, n, f, *epoch, elements, proofs);
                println!(
                    "[{at}] get_epoch({epoch}) from {from}: {} elements, {} proofs -> {:?}",
                    elements.len(),
                    proofs.len(),
                    verdict
                );
                let mine = elements
                    .iter()
                    .filter(|e| my_elements.iter().any(|m| m.id == e.id))
                    .count();
                println!("        {mine} of my 3 elements are in this verified epoch");
            }
            _ => {}
        }
    }

    // 6. Cross-check the safety properties directly on two servers.
    let s0 = deployment.server(0);
    let s3 = deployment.server(3);
    println!(
        "server 0: epoch = {}, |the_set| = {}; consistent with server 3: {}",
        s0.state().epoch(),
        s0.state().the_set_len(),
        s0.state().check_consistent_with(s3.state())
    );
    let committed = deployment.trace.committed_count_by(SimTime::from_secs(25));
    println!(
        "elements committed (epoch has ≥ f+1 proofs on the ledger): {committed} / {}",
        deployment.trace.added_count()
    );
}
