//! ABCI-style application interface.
//!
//! CometBFT separates the consensus engine from the replicated application
//! through ABCI; the paper implements the three Setchain algorithms "in the
//! ABCI section of the ledger" (Appendix E). This module is the equivalent
//! boundary: a [`LedgerNode`](crate::node::LedgerNode) drives an
//! [`Application`] through `check_tx` / `finalize_block` callbacks, and the
//! application talks back through [`AppCtx`] — submitting transactions
//! (CometBFT's `BroadcastTxAsync`), exchanging application-level messages
//! with peers (Hashchain's `Request_batch`), arming timers (collector
//! timeouts) and charging CPU time for hashing/compression work.

use rand::rngs::StdRng;
use setchain_crypto::ProcessId;
use setchain_simnet::{Context, SimDuration, SimTime, TimerToken, Wire};

use crate::messages::NetMsg;
use crate::types::{Block, TxData};

/// The replicated application run by every ledger node.
pub trait Application: Send + 'static {
    /// Ledger transaction type produced and consumed by this application.
    type Tx: TxData;
    /// Application-level message type (client requests and peer-to-peer).
    type Msg: Wire;

    /// Called once when the node starts.
    fn on_start(&mut self, _ctx: &mut AppCtx<'_, '_, '_, Self::Tx, Self::Msg>) {}

    /// Validates a transaction before it enters the mempool (ABCI `CheckTx`).
    /// Both locally submitted and gossiped transactions pass through here.
    fn check_tx(&self, _tx: &Self::Tx) -> bool {
        true
    }

    /// Called in block order, exactly once per committed block, on every
    /// correct node (ABCI `FinalizeBlock`). This is where the Setchain
    /// algorithms process `new_block(B)` notifications.
    fn finalize_block(
        &mut self,
        block: &Block<Self::Tx>,
        ctx: &mut AppCtx<'_, '_, '_, Self::Tx, Self::Msg>,
    );

    /// Called when an application-level message arrives from `from` (a client
    /// request or a peer server message).
    fn on_message(
        &mut self,
        _from: ProcessId,
        _msg: Self::Msg,
        _ctx: &mut AppCtx<'_, '_, '_, Self::Tx, Self::Msg>,
    ) {
    }

    /// Called when several application-level messages arrive at the same
    /// simulated instant (the node threads the scheduler's coalesced
    /// delivery batch through in one callback round). The default drains
    /// the batch through [`on_message`](Self::on_message) in delivery
    /// order; overriders must consume every entry and preserve per-message
    /// semantics — the batch boundary is a scheduling artifact, not
    /// protocol structure.
    fn on_messages(
        &mut self,
        batch: &mut Vec<(ProcessId, Self::Msg)>,
        ctx: &mut AppCtx<'_, '_, '_, Self::Tx, Self::Msg>,
    ) {
        for (from, msg) in batch.drain(..) {
            self.on_message(from, msg, ctx);
        }
    }

    /// Called when an application timer armed through
    /// [`AppCtx::set_app_timer`] fires.
    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut AppCtx<'_, '_, '_, Self::Tx, Self::Msg>) {
    }
}

/// A boxed application is an application: every callback delegates to the
/// boxed value. This is what lets a [`LedgerNode`](crate::node::LedgerNode)
/// run a trait object (e.g. `LedgerNode<Box<dyn SetchainApp>>`), so one
/// concrete node type serves every application variant without per-variant
/// dispatch at the call sites.
impl<A: Application + ?Sized> Application for Box<A> {
    type Tx = A::Tx;
    type Msg = A::Msg;

    fn on_start(&mut self, ctx: &mut AppCtx<'_, '_, '_, Self::Tx, Self::Msg>) {
        (**self).on_start(ctx);
    }

    fn check_tx(&self, tx: &Self::Tx) -> bool {
        (**self).check_tx(tx)
    }

    fn finalize_block(
        &mut self,
        block: &Block<Self::Tx>,
        ctx: &mut AppCtx<'_, '_, '_, Self::Tx, Self::Msg>,
    ) {
        (**self).finalize_block(block, ctx);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut AppCtx<'_, '_, '_, Self::Tx, Self::Msg>,
    ) {
        (**self).on_message(from, msg, ctx);
    }

    fn on_messages(
        &mut self,
        batch: &mut Vec<(ProcessId, Self::Msg)>,
        ctx: &mut AppCtx<'_, '_, '_, Self::Tx, Self::Msg>,
    ) {
        (**self).on_messages(batch, ctx);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut AppCtx<'_, '_, '_, Self::Tx, Self::Msg>) {
        (**self).on_timer(token, ctx);
    }
}

/// Context handed to the application during callbacks.
pub struct AppCtx<'a, 'b, 'c, T, AM: Wire>
where
    T: TxData,
{
    pub(crate) node_id: ProcessId,
    pub(crate) sim: &'a mut Context<'c, NetMsg<T, AM>>,
    pub(crate) submitted: &'b mut Vec<T>,
}

impl<'a, 'b, 'c, T, AM> AppCtx<'a, 'b, 'c, T, AM>
where
    T: TxData,
    AM: Wire,
{
    /// Id of the node this application instance runs on.
    pub fn node_id(&self) -> ProcessId {
        self.node_id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Submits a transaction to the local mempool (CometBFT's
    /// `BroadcastTxAsync`): it will be validated with `check_tx`, gossiped to
    /// peers and eventually included in a block. This is the ledger
    /// `append` endpoint used by the Setchain algorithms.
    pub fn append(&mut self, tx: T) {
        self.submitted.push(tx);
    }

    /// Sends an application-level message to another process (server or
    /// client). Used by Hashchain's `Request_batch` and by servers answering
    /// client `get` requests.
    pub fn send_app(&mut self, to: ProcessId, msg: AM) {
        self.sim.send(to, NetMsg::App(msg));
    }

    /// Sends one application-level message to every process in `peers`.
    /// The payload is built once and Arc-shared: the send side and the event
    /// queue hold a single copy, with per-recipient clones deferred to
    /// delivery time (the last recipient takes the payload without one).
    pub fn broadcast_app<I>(&mut self, peers: I, msg: AM)
    where
        I: IntoIterator<Item = ProcessId>,
    {
        self.sim.send_to_all(peers, NetMsg::App(msg));
    }

    /// Arms an application timer; the token is returned verbatim in
    /// [`Application::on_timer`]. Tokens must be below 2^48.
    pub fn set_app_timer(&mut self, delay: SimDuration, token: TimerToken) {
        assert!(token < (1 << 48), "app timer token too large");
        self.sim
            .set_timer(delay, crate::node::APP_TIMER_BASE | token);
    }

    /// Charges simulated CPU time to this node (hashing, compression,
    /// signature checks performed by the application).
    pub fn consume_cpu(&mut self, amount: SimDuration) {
        self.sim.consume_cpu(amount);
    }

    /// Deterministic RNG shared with the simulation.
    pub fn rng(&mut self) -> &mut StdRng {
        self.sim.rng()
    }
}
