//! Prints the Appendix D.1 analytical throughput values.
fn main() {
    let ctx = setchain_bench::ExperimentCtx::from_env();
    setchain_bench::figures::appendix_d(&ctx);
}
