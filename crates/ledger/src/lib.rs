//! Block-based ledger substrate: a Tendermint/CometBFT-style BFT
//! state-machine-replication engine running on the `setchain-simnet`
//! simulator.
//!
//! The Setchain algorithms in the paper are built on top of CometBFT v0.38
//! through its ABCI interface and only rely on three ledger properties
//! (Section 2, Properties 9–11):
//!
//! 1. **Ledger-Add-Eventual-Notify** — a transaction appended by a correct
//!    server is eventually included in a final block and every correct server
//!    is notified of that block.
//! 2. **Ledger-Consistent-Notification** — all correct servers are notified of
//!    the same blocks in the same order.
//! 3. **Notification-Implies-Append** — a notified transaction was appended by
//!    some server.
//!
//! This crate provides those guarantees with a faithful (if simplified)
//! Tendermint consensus: rotating proposers, prevote/precommit rounds with
//! 2f+1 quorums, a gossiped mempool with CometBFT's size limits, a
//! configurable block interval and block size, commit certificates, and
//! catch-up block sync. The application hook mirrors ABCI's `CheckTx` /
//! `FinalizeBlock` (plus peer-to-peer application messages, which Hashchain
//! needs for hash reversal).
//!
//! Fault injection: validators can be configured with [`ByzMode`] behaviours
//! (silence, equivocation, vote withholding) to exercise the f < n/3 fault
//! tolerance in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod byzantine;
pub mod mempool;
pub mod messages;
pub mod node;
pub mod trace;
pub mod types;

pub use app::{AppCtx, Application};
pub use byzantine::ByzMode;
pub use mempool::{Mempool, MempoolRejection};
pub use messages::NetMsg;
pub use node::{LedgerNode, NodeStats, APP_TIMER_BASE};
pub use trace::{BlockSummary, LedgerTrace};
pub use types::{Block, BlockId, LedgerConfig, TxData, TxId};
